package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sling/internal/durable"
	"sling/internal/humanize"
)

// cmdDurable verifies a dynamic graph's durable state directory:
// `inspect` prints the full segment chain and snapshot set, `verify` a
// one-line summary. Both CRC-check every file read-only and fail when
// the directory holds damage recovery would refuse to repair.
func cmdDurable(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("durable: missing verb (want inspect|verify)")
	}
	verb := args[0]
	fs := flag.NewFlagSet("durable "+verb, flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the machine-readable report")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("durable %s: want exactly one DIR argument", verb)
	}
	dir := fs.Arg(0)
	rep, err := durable.Inspect(dir)
	if err != nil {
		return fmt.Errorf("durable %s: %w", verb, err)
	}
	switch verb {
	case "inspect":
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
		} else {
			printReport(rep)
		}
	case "verify":
		status := "ok"
		if rep.Corrupt() {
			status = "CORRUPT"
		}
		fmt.Printf("%s: %s (%d snapshot(s), %d segment(s), last LSN %d, %d tail record(s))\n",
			dir, status, len(rep.Snapshots), len(rep.Segments), rep.LastLSN, rep.TailRecords)
		for _, p := range rep.Problems {
			fmt.Printf("  problem: %s\n", p)
		}
	default:
		return fmt.Errorf("durable: unknown verb %q (want inspect|verify)", verb)
	}
	if rep.Corrupt() {
		return fmt.Errorf("durable %s: %s holds unrecoverable damage (%d problem(s))", verb, dir, len(rep.Problems))
	}
	return nil
}

func printReport(rep *durable.Report) {
	fmt.Printf("durable directory %s\n", rep.Dir)
	fmt.Printf("snapshots (%d):\n", len(rep.Snapshots))
	for _, s := range rep.Snapshots {
		mark := "valid"
		if !s.Valid {
			mark = "INVALID: " + s.Err
		}
		chosen := ""
		if s.Name == rep.RecoverFrom {
			chosen = "  <- recovery anchor"
		}
		fmt.Printf("  %s  seq %d  lsn %d  epoch %d  %s  %s%s\n",
			s.Name, s.Seq, s.LSN, s.Epoch, humanize.Bytes(s.Bytes), mark, chosen)
	}
	fmt.Printf("segments (%d):\n", len(rep.Segments))
	for _, s := range rep.Segments {
		fmt.Printf("  %s  lsn %d..%d  %d record(s)  %s",
			s.Name, s.FirstLSN, s.LastLSN, s.Records, humanize.Bytes(s.Bytes))
		if s.TornBytes > 0 {
			fmt.Printf("  torn tail: %d byte(s) (recovery truncates)", s.TornBytes)
		}
		if s.Err != "" {
			fmt.Printf("  ERROR: %s", s.Err)
		}
		fmt.Println()
	}
	fmt.Printf("recovery: last LSN %d, %d tail record(s) / %d op(s) replay over %s\n",
		rep.LastLSN, rep.TailRecords, rep.TailOps, orNone(rep.RecoverFrom))
	if rep.Corrupt() {
		fmt.Printf("problems (%d):\n", len(rep.Problems))
		for _, p := range rep.Problems {
			fmt.Printf("  %s\n", p)
		}
	} else {
		fmt.Println("integrity: ok")
	}
}

func orNone(s string) string {
	if s == "" {
		return "(no snapshot)"
	}
	return s
}
