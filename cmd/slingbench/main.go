// Command slingbench regenerates the SLING paper's evaluation (Section 7
// and Appendix C): every figure has an -exp target that prints the same
// rows/series the paper reports, measured on the synthetic dataset
// stand-ins of internal/workload.
//
// Usage:
//
//	slingbench -exp fig1 [-datasets GrQc,AS] [-preset fast|paper] ...
//
// Experiments:
//
//	table3   dataset statistics (Table 3)
//	fig1     average single-pair query time per method
//	fig2     average single-source query time per method
//	fig3     preprocessing time per method
//	fig4     index space per method
//	perf     fig1+fig2+fig3+fig4 in one pass (shared builds)
//	fig5     max all-pairs error over repeated index builds (4 smallest)
//	fig6     average error by SimRank score group S1/S2/S3
//	fig7     top-k pair precision
//	acc      fig5+fig6+fig7 in one pass (shared ground truth)
//	fig9     SLING preprocessing time vs worker count
//	fig10    out-of-core preprocessing time vs memory buffer
//	ablation Section 5 design-choice ablations
//	throughput  batch single-source throughput vs worker count, and
//	         top-k heap selection vs full sort (the serving engine's
//	         hot paths; not a paper figure)
//	diskqps  disk-resident (Section 5.4) single-pair QPS vs goroutine
//	         count and entry-cache size, with cache hit rates (not a
//	         paper figure; bounds the -disk serving tier)
//	dynamic  query QPS and staleness (affected-frontier size, pending
//	         ops, epoch swaps) while edge updates stream in at each
//	         -update-rates setting (not a paper figure; bounds the
//	         dynamic-graph serving tier)
//	querier  every facade backend (memory, disk, dynamic) driven through
//	         the one sling.Querier interface: pair latency, top-k
//	         latency, and batch throughput from a single benchmark loop,
//	         so any future backend benches for free (not a paper figure);
//	         also writes BENCH_querier.json with QPS and p50/p99 from
//	         the serving histograms
//	catalog  the multi-tenant stack end to end: one dataset served as
//	         memory, disk, and dynamic entries of a catalog server,
//	         driven through the real /g/{id}/simrank HTTP routes; writes
//	         BENCH_catalog.json (not a paper figure)
//	sharded  scatter/gather QPS vs shard count: one dataset split into
//	         in-process shards behind the internal/shard router, pair /
//	         single-source / top-k latency at each fan-out width; writes
//	         BENCH_sharded.json (not a paper figure)
//	all      everything above
//
// The default "fast" preset uses ε=0.1 so the full sweep finishes on a
// laptop; -preset paper switches to the paper's ε=0.025 (Section 7.1).
// Accuracy experiments always run SLING at the paper's ε. Absolute times
// differ from the paper's C++/16-core testbed; EXPERIMENTS.md records the
// expected shapes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"sling"
	"sling/internal/core"
	"sling/internal/dynamic"
	"sling/internal/eval"
	"sling/internal/graph"
	"sling/internal/humanize"
	"sling/internal/linearize"
	"sling/internal/mc"
	"sling/internal/metrics"
	"sling/internal/power"
	"sling/internal/rng"
	"sling/internal/workload"
)

var (
	expFlag      = flag.String("exp", "perf", "experiment: table3|fig1|fig2|fig3|fig4|perf|fig5|fig6|fig7|acc|fig9|fig10|ablation|throughput|diskqps|dynamic|querier|catalog|all")
	datasetsFlag = flag.String("datasets", "", "comma-separated dataset names (default: per-experiment)")
	scaleFlag    = flag.Float64("scale", 1, "dataset scale factor")
	presetFlag   = flag.String("preset", "fast", "parameter preset: fast (eps=0.1) or paper (eps=0.025)")
	pairsFlag    = flag.Int("pairs", 1000, "single-pair queries per dataset (time-boxed)")
	sourcesFlag  = flag.Int("sources", 100, "single-source queries per dataset (time-boxed)")
	runsFlag     = flag.Int("runs", 3, "index rebuilds for fig5 (paper: 10)")
	budgetFlag   = flag.Duration("budget", 15*time.Second, "per-method query timing budget")
	seedFlag     = flag.Uint64("seed", 1, "base random seed")
	threadsFlag  = flag.String("threads", "1,2,4,8,16", "worker counts for fig9")
	buffersFlag  = flag.String("buffers", "1,4,16,64,all", "memory buffers in MiB for fig10 ('all' = in-memory)")
	kvalsFlag    = flag.String("k", "400,800,1200,1600,2000", "k values for fig7")
	mcCapFlag    = flag.Int64("mccap", 1<<30, "max MC index bytes before the dataset is skipped (paper: 64GB)")
	cachesFlag   = flag.String("caches", "0,0.25,4", "diskqps entry-cache sizes in MiB (0 = uncached)")
	diskOpsFlag  = flag.Int("diskops", 20000, "diskqps single-pair queries per cell")

	updRatesFlag   = flag.String("update-rates", "0,200,2000", "dynamic: edge-update rates in ops/sec, one cell each")
	dynDurFlag     = flag.Duration("dyndur", 3*time.Second, "dynamic: wall time per cell")
	dynThreshFlag  = flag.Int("rebuild-every", 500, "dynamic: applied ops per background rebuild (0 = never)")
	dynWalksFlag   = flag.Int("dynwalks", 1024, "dynamic: MC walks per affected-node estimate")
	dynWorkersFlag = flag.Int("dynworkers", 4, "dynamic: concurrent query goroutines")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slingbench:", err)
		os.Exit(1)
	}
}

func run() error {
	exps := strings.Split(*expFlag, ",")
	for _, e := range exps {
		switch strings.TrimSpace(e) {
		case "table3":
			runTable3()
		case "fig1", "fig2", "fig3", "fig4", "perf":
			if err := runPerf(); err != nil {
				return err
			}
		case "fig5", "fig6", "fig7", "acc":
			if err := runAccuracy(); err != nil {
				return err
			}
		case "fig9":
			if err := runThreads(); err != nil {
				return err
			}
		case "fig10":
			if err := runBuffers(); err != nil {
				return err
			}
		case "ablation":
			if err := runAblation(); err != nil {
				return err
			}
		case "throughput":
			if err := runThroughput(); err != nil {
				return err
			}
		case "diskqps":
			if err := runDiskQPS(); err != nil {
				return err
			}
		case "dynamic":
			if err := runDynamic(); err != nil {
				return err
			}
		case "querier":
			if err := runQuerier(); err != nil {
				return err
			}
		case "catalog":
			if err := runCatalog(); err != nil {
				return err
			}
		case "sharded":
			if err := runSharded(); err != nil {
				return err
			}
		case "all":
			runTable3()
			if err := runPerf(); err != nil {
				return err
			}
			if err := runAccuracy(); err != nil {
				return err
			}
			if err := runThreads(); err != nil {
				return err
			}
			if err := runBuffers(); err != nil {
				return err
			}
			if err := runAblation(); err != nil {
				return err
			}
			if err := runThroughput(); err != nil {
				return err
			}
			if err := runDiskQPS(); err != nil {
				return err
			}
			if err := runDynamic(); err != nil {
				return err
			}
			if err := runQuerier(); err != nil {
				return err
			}
			if err := runCatalog(); err != nil {
				return err
			}
			if err := runSharded(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", e)
		}
	}
	return nil
}

// selectDatasets resolves -datasets against a default list.
func selectDatasets(def []workload.Spec) ([]workload.Spec, error) {
	if *datasetsFlag == "" {
		return def, nil
	}
	var out []workload.Spec
	for _, name := range strings.Split(*datasetsFlag, ",") {
		s, ok := workload.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// params returns per-method options under the active preset.
func params(preset string) (slingOpt core.Options, linOpt linearize.Options, mcEps float64, err error) {
	switch preset {
	case "fast":
		slingOpt = core.Options{Eps: 0.1, Seed: *seedFlag}
		mcEps = 0.1
	case "paper":
		slingOpt = core.Options{Eps: 0.025, Seed: *seedFlag}
		mcEps = 0.025
	default:
		err = fmt.Errorf("unknown preset %q", preset)
		return
	}
	linOpt = linearize.Options{T: 11, R: 100, L: 3, Seed: *seedFlag} // paper Section 7.1
	return
}

// mcOptions derives MC options whose index fits the -mccap budget, or
// reports that the dataset must be skipped (the paper skips MC beyond its
// four smallest graphs for the same reason).
func mcOptions(n int, eps float64) (mc.Options, bool) {
	t := mc.DeriveTruncation(eps, 0.6)
	nw := mc.DeriveNumWalks(eps, 0.01, n)
	if int64(n)*int64(nw)*int64(t+1)*4 > *mcCapFlag {
		return mc.Options{}, false
	}
	return mc.Options{C: 0.6, NumWalks: nw, Truncation: t, Seed: *seedFlag}, true
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1000)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// timeBox runs up to count calls of fn within the budget and returns the
// average latency and how many calls ran.
func timeBox(count int, budget time.Duration, fn func(i int)) (time.Duration, int) {
	if count <= 0 {
		return 0, 0
	}
	start := time.Now()
	ran := 0
	for ; ran < count; ran++ {
		fn(ran)
		if time.Since(start) > budget {
			ran++
			break
		}
	}
	return time.Since(start) / time.Duration(ran), ran
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// ---------------------------------------------------------------- table3

func runTable3() {
	fmt.Println("== Table 3: datasets (synthetic stand-ins; paper sizes in parentheses) ==")
	w := newTab()
	fmt.Fprintln(w, "dataset\ttype\tn\tm\tpaper n\tpaper m\tgenerator")
	for _, s := range workload.Datasets() {
		g := s.Generate(*scaleFlag)
		typ := "directed"
		if !s.Directed {
			typ = "undirected"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			s.Name, typ, g.NumNodes(), g.NumEdges(), s.PaperNodes, s.PaperEdges, s.Kind)
	}
	w.Flush()
	fmt.Println()
}

// ------------------------------------------------------------- fig1-fig4

type perfRow struct {
	name string

	slingBuild, linBuild, mcBuild time.Duration
	slingBytes, linBytes, mcBytes int64
	slingPair, linPair, mcPair    time.Duration
	slingSS, slingSSNaive         time.Duration
	linSS, mcSS                   time.Duration
	naiveRan                      bool
}

func runPerf() error {
	specs, err := selectDatasets(workload.Datasets())
	if err != nil {
		return err
	}
	slingOpt, linOpt, mcEps, err := params(*presetFlag)
	if err != nil {
		return err
	}
	fmt.Printf("== Figures 1-4: query/preprocessing cost per method (preset %s, scale %g) ==\n", *presetFlag, *scaleFlag)
	var rows []perfRow
	for di, spec := range specs {
		g := spec.Generate(*scaleFlag)
		row := perfRow{name: spec.Name}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s: n=%d m=%d building...\n", di+1, len(specs), spec.Name, g.NumNodes(), g.NumEdges())

		start := time.Now()
		slingIx, err := core.Build(g, &slingOpt)
		if err != nil {
			return fmt.Errorf("%s: sling build: %w", spec.Name, err)
		}
		row.slingBuild = time.Since(start)
		row.slingBytes = slingIx.Bytes() + g.Bytes()

		start = time.Now()
		linIx, err := linearize.Build(g, &linOpt)
		if err != nil {
			return fmt.Errorf("%s: linearize build: %w", spec.Name, err)
		}
		row.linBuild = time.Since(start)
		row.linBytes = linIx.Bytes() + g.Bytes()

		var mcIx *mc.Index
		if mcOpt, ok := mcOptions(g.NumNodes(), mcEps); ok {
			start = time.Now()
			mcIx, err = mc.Build(g, &mcOpt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "  mc skipped: %v\n", err)
			} else {
				row.mcBuild = time.Since(start)
				row.mcBytes = mcIx.Bytes() + g.Bytes()
			}
		} else {
			fmt.Fprintf(os.Stderr, "  mc skipped: index would exceed %s (as in the paper)\n", humanize.Bytes(*mcCapFlag))
		}

		// Figure 1: single-pair latency.
		pairs := workload.RandomPairs(g, *pairsFlag, *seedFlag+7)
		qs := slingIx.NewScratch()
		row.slingPair, _ = timeBox(len(pairs), *budgetFlag, func(i int) {
			slingIx.SimRank(pairs[i].U, pairs[i].V, qs)
		})
		ls := linIx.NewScratch()
		row.linPair, _ = timeBox(len(pairs), *budgetFlag, func(i int) {
			linIx.SimRank(pairs[i].U, pairs[i].V, ls)
		})
		if mcIx != nil {
			row.mcPair, _ = timeBox(len(pairs), *budgetFlag, func(i int) {
				mcIx.SimRank(pairs[i].U, pairs[i].V)
			})
		}

		// Figure 2: single-source latency.
		sources := workload.RandomNodes(g, *sourcesFlag, *seedFlag+11)
		out := make([]float64, g.NumNodes())
		ss := slingIx.NewSourceScratch()
		row.slingSS, _ = timeBox(len(sources), *budgetFlag, func(i int) {
			slingIx.SingleSource(sources[i], ss, out)
		})
		if di < 4 { // the paper runs the naive Alg-3 loop only on the 4 smallest
			row.naiveRan = true
			row.slingSSNaive, _ = timeBox(len(sources), *budgetFlag, func(i int) {
				slingIx.SingleSourceNaive(sources[i], qs, out)
			})
		}
		row.linSS, _ = timeBox(len(sources), *budgetFlag, func(i int) {
			linIx.SingleSource(sources[i], ls, out)
		})
		if mcIx != nil {
			row.mcSS, _ = timeBox(len(sources), *budgetFlag, func(i int) {
				mcIx.SingleSource(sources[i], out)
			})
		}
		rows = append(rows, row)
	}

	fmt.Println("\n-- Figure 1: average single-pair query time --")
	w := newTab()
	fmt.Fprintln(w, "dataset\tSLING\tLinearize\tMC\tspeedup vs Linearize")
	for _, r := range rows {
		speed := "-"
		if r.slingPair > 0 && r.linPair > 0 {
			speed = fmt.Sprintf("%.0fx", float64(r.linPair)/float64(r.slingPair))
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", r.name, fmtDur(r.slingPair), fmtDur(r.linPair), fmtDur(r.mcPair), speed)
	}
	w.Flush()

	fmt.Println("\n-- Figure 2: average single-source query time --")
	w = newTab()
	fmt.Fprintln(w, "dataset\tSLING(Alg6)\tSLING(Alg3 loop)\tLinearize\tMC\tspeedup vs Linearize")
	for _, r := range rows {
		naive := "-"
		if r.naiveRan {
			naive = fmtDur(r.slingSSNaive)
		}
		speed := "-"
		if r.slingSS > 0 && r.linSS > 0 {
			speed = fmt.Sprintf("%.0fx", float64(r.linSS)/float64(r.slingSS))
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n", r.name, fmtDur(r.slingSS), naive, fmtDur(r.linSS), fmtDur(r.mcSS), speed)
	}
	w.Flush()

	fmt.Println("\n-- Figure 3: preprocessing time --")
	w = newTab()
	fmt.Fprintln(w, "dataset\tSLING\tLinearize\tMC")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", r.name, fmtDur(r.slingBuild), fmtDur(r.linBuild), fmtDur(r.mcBuild))
	}
	w.Flush()

	fmt.Println("\n-- Figure 4: space consumption (index + graph) --")
	w = newTab()
	fmt.Fprintln(w, "dataset\tSLING\tLinearize\tMC")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", r.name, humanize.Bytes(r.slingBytes), humanize.Bytes(r.linBytes), humanize.Bytes(r.mcBytes))
	}
	w.Flush()
	fmt.Println()
	return nil
}

// ------------------------------------------------------------- fig5-fig7

func runAccuracy() error {
	specs, err := selectDatasets(workload.SmallDatasets())
	if err != nil {
		return err
	}
	_, linOpt, _, err := params(*presetFlag)
	if err != nil {
		return err
	}
	// Accuracy experiments follow the paper: SLING at ε=0.025; MC's walk
	// count is capped by memory rather than theory (the theoretical count
	// needs tens of GB even on the smallest graph — see EXPERIMENTS.md).
	slingOpt := core.Options{Eps: 0.025}
	kvals, err := parseInts(*kvalsFlag)
	if err != nil {
		return err
	}
	fmt.Printf("== Figures 5-7: accuracy vs power-method ground truth (%d run(s), scale %g) ==\n", *runsFlag, *scaleFlag)

	type accRow struct {
		name                       string
		slingMax, linMax, mcMax    []float64 // per run
		slingGrp, linGrp, mcGrp    eval.Grouped
		slingPrec, linPrec, mcPrec map[int]float64
	}
	var rows []accRow
	for _, spec := range specs {
		g := spec.Generate(*scaleFlag)
		fmt.Fprintf(os.Stderr, "%s: computing ground truth (n=%d)...\n", spec.Name, g.NumNodes())
		truth, err := eval.GroundTruth(g, 0.6)
		if err != nil {
			return fmt.Errorf("%s: ground truth: %w", spec.Name, err)
		}
		row := accRow{name: spec.Name,
			slingPrec: map[int]float64{}, linPrec: map[int]float64{}, mcPrec: map[int]float64{}}
		// MC walk count under a 256 MiB budget.
		mcT := mc.DeriveTruncation(0.025, 0.6)
		mcNW := int((256 << 20) / (int64(g.NumNodes()) * int64(mcT+1) * 4))
		if mcNW > 20000 {
			mcNW = 20000
		}
		for run := 0; run < *runsFlag; run++ {
			seed := *seedFlag + uint64(run)*1000
			so := slingOpt
			so.Seed = seed
			slingIx, err := core.Build(g, &so)
			if err != nil {
				return err
			}
			ss := slingIx.NewSourceScratch()
			slingAll := eval.Collect(g.NumNodes(), func(u graph.NodeID, out []float64) []float64 {
				return slingIx.SingleSource(u, ss, out)
			})
			lo := linOpt
			lo.Seed = seed
			linIx, err := linearize.Build(g, &lo)
			if err != nil {
				return err
			}
			ls := linIx.NewScratch()
			linAll := eval.Collect(g.NumNodes(), func(u graph.NodeID, out []float64) []float64 {
				return linIx.SingleSource(u, ls, out)
			})
			mcIx, err := mc.Build(g, &mc.Options{C: 0.6, NumWalks: mcNW, Truncation: mcT, Seed: seed})
			if err != nil {
				return err
			}
			mcAll := mcIx.AllPairs()

			for _, pair := range []struct {
				est *power.Scores
				dst *[]float64
			}{{slingAll, &row.slingMax}, {linAll, &row.linMax}, {mcAll, &row.mcMax}} {
				m, err := eval.MaxError(pair.est, truth)
				if err != nil {
					return err
				}
				*pair.dst = append(*pair.dst, m)
			}
			if run == 0 {
				if row.slingGrp, err = eval.GroupErrors(slingAll, truth); err != nil {
					return err
				}
				if row.linGrp, err = eval.GroupErrors(linAll, truth); err != nil {
					return err
				}
				if row.mcGrp, err = eval.GroupErrors(mcAll, truth); err != nil {
					return err
				}
				for _, k := range kvals {
					if row.slingPrec[k], err = eval.TopKPrecision(slingAll, truth, k); err != nil {
						return err
					}
					if row.linPrec[k], err = eval.TopKPrecision(linAll, truth, k); err != nil {
						return err
					}
					if row.mcPrec[k], err = eval.TopKPrecision(mcAll, truth, k); err != nil {
						return err
					}
				}
			}
		}
		rows = append(rows, row)
	}

	fmt.Println("\n-- Figure 5: maximum all-pairs error per run (SLING guarantee eps=0.025) --")
	w := newTab()
	fmt.Fprintln(w, "dataset\trun\tSLING\tLinearize\tMC")
	for _, r := range rows {
		for run := range r.slingMax {
			fmt.Fprintf(w, "%s\t%d\t%.5f\t%.5f\t%.5f\n", r.name, run+1, r.slingMax[run], r.linMax[run], r.mcMax[run])
		}
	}
	w.Flush()

	fmt.Println("\n-- Figure 6: average error per SimRank score group --")
	w = newTab()
	fmt.Fprintln(w, "dataset\tgroup\tSLING\tLinearize\tMC")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\tS1 [0.1,1]\t%.2e\t%.2e\t%.2e\n", r.name, r.slingGrp.S1, r.linGrp.S1, r.mcGrp.S1)
		fmt.Fprintf(w, "%s\tS2 [0.01,0.1)\t%.2e\t%.2e\t%.2e\n", r.name, r.slingGrp.S2, r.linGrp.S2, r.mcGrp.S2)
		fmt.Fprintf(w, "%s\tS3 (<0.01)\t%.2e\t%.2e\t%.2e\n", r.name, r.slingGrp.S3, r.linGrp.S3, r.mcGrp.S3)
	}
	w.Flush()

	fmt.Println("\n-- Figure 7: top-k pair precision --")
	w = newTab()
	fmt.Fprintln(w, "dataset\tk\tSLING\tLinearize\tMC")
	for _, r := range rows {
		ks := make([]int, 0, len(r.slingPrec))
		for k := range r.slingPrec {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for _, k := range ks {
			fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%.4f\n", r.name, k, r.slingPrec[k], r.linPrec[k], r.mcPrec[k])
		}
	}
	w.Flush()
	fmt.Println()
	return nil
}

// ----------------------------------------------------------------- fig9

func runThreads() error {
	def := []workload.Spec{}
	for _, name := range []string{"Google", "In-2004"} {
		s, _ := workload.ByName(name)
		def = append(def, s)
	}
	specs, err := selectDatasets(def)
	if err != nil {
		return err
	}
	slingOpt, _, _, err := params(*presetFlag)
	if err != nil {
		return err
	}
	threads, err := parseInts(*threadsFlag)
	if err != nil {
		return err
	}
	fmt.Printf("== Figure 9: SLING preprocessing time vs worker count (preset %s) ==\n", *presetFlag)
	fmt.Println("   note: speedup requires physical cores; see EXPERIMENTS.md for this host")
	w := newTab()
	fmt.Fprintln(w, "dataset\tworkers\tpreprocessing")
	for _, spec := range specs {
		g := spec.Generate(*scaleFlag)
		for _, th := range threads {
			o := slingOpt
			o.Workers = th
			start := time.Now()
			if _, err := core.Build(g, &o); err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%d\t%s\n", spec.Name, th, fmtDur(time.Since(start)))
			w.Flush()
		}
	}
	fmt.Println()
	return nil
}

// ---------------------------------------------------------------- fig10

func runBuffers() error {
	def := []workload.Spec{}
	for _, name := range []string{"Google", "In-2004"} {
		s, _ := workload.ByName(name)
		def = append(def, s)
	}
	specs, err := selectDatasets(def)
	if err != nil {
		return err
	}
	slingOpt, _, _, err := params(*presetFlag)
	if err != nil {
		return err
	}
	fmt.Printf("== Figure 10: out-of-core preprocessing time vs memory buffer (preset %s) ==\n", *presetFlag)
	w := newTab()
	fmt.Fprintln(w, "dataset\tbuffer\tpreprocessing\tspill runs")
	for _, spec := range specs {
		g := spec.Generate(*scaleFlag)
		for _, b := range strings.Split(*buffersFlag, ",") {
			b = strings.TrimSpace(b)
			start := time.Now()
			if b == "all" {
				if _, err := core.Build(g, &slingOpt); err != nil {
					return err
				}
				fmt.Fprintf(w, "%s\tall (in-memory)\t%s\t0\n", spec.Name, fmtDur(time.Since(start)))
			} else {
				mib, err := strconv.ParseFloat(b, 64)
				if err != nil {
					return fmt.Errorf("bad buffer size %q", b)
				}
				dir, err := os.MkdirTemp("", "slingbench-ooc")
				if err != nil {
					return err
				}
				budget := int64(mib * (1 << 20))
				if _, err := core.BuildOutOfCore(g, &slingOpt, core.OutOfCoreOptions{Dir: dir, MemBudget: budget}); err != nil {
					os.RemoveAll(dir)
					return err
				}
				fmt.Fprintf(w, "%s\t%sMiB\t%s\t-\n", spec.Name, b, fmtDur(time.Since(start)))
				os.RemoveAll(dir)
			}
			w.Flush()
		}
	}
	fmt.Println()
	return nil
}

// -------------------------------------------------------------- ablation

func runAblation() error {
	specs, err := selectDatasets(workload.SmallDatasets()[:2])
	if err != nil {
		return err
	}
	fmt.Println("== Ablations: Section 5 design choices ==")
	for _, spec := range specs {
		g := spec.Generate(*scaleFlag)
		truth, err := eval.GroundTruth(g, 0.6)
		if err != nil {
			return err
		}
		fmt.Printf("\n-- %s (n=%d, m=%d) --\n", spec.Name, g.NumNodes(), g.NumEdges())

		// 5.1: Algorithm 1 vs Algorithm 4 sample counts.
		_, stBasic, err := core.BuildWithStats(g, &core.Options{Eps: 0.05, Seed: *seedFlag, BasicEstimator: true})
		if err != nil {
			return err
		}
		_, stAdaptive, err := core.BuildWithStats(g, &core.Options{Eps: 0.05, Seed: *seedFlag})
		if err != nil {
			return err
		}
		fmt.Printf("d-estimation walk pairs:  Alg1 (basic) %d   Alg4 (adaptive) %d   saving %.1fx\n",
			stBasic.WalkPairs, stAdaptive.WalkPairs,
			float64(stBasic.WalkPairs)/float64(stAdaptive.WalkPairs))

		// 5.2: space reduction on/off.
		full, err := core.Build(g, &core.Options{Eps: 0.05, Seed: *seedFlag, DisableSpaceReduction: true})
		if err != nil {
			return err
		}
		red, err := core.Build(g, &core.Options{Eps: 0.05, Seed: *seedFlag})
		if err != nil {
			return err
		}
		pairs := workload.RandomPairs(g, 2000, *seedFlag+3)
		sF, sR := full.NewScratch(), red.NewScratch()
		tFull, _ := timeBox(len(pairs), 5*time.Second, func(i int) { full.SimRank(pairs[i].U, pairs[i].V, sF) })
		tRed, _ := timeBox(len(pairs), 5*time.Second, func(i int) { red.SimRank(pairs[i].U, pairs[i].V, sR) })
		fmt.Printf("space reduction (5.2):    off %s / %s per query   on %s / %s per query\n",
			humanize.Bytes(full.Bytes()), fmtDur(tFull), humanize.Bytes(red.Bytes()), fmtDur(tRed))

		// 5.3: enhancement on/off accuracy.
		enh, err := core.Build(g, &core.Options{Eps: 0.05, Seed: *seedFlag, Enhance: true})
		if err != nil {
			return err
		}
		ssP := red.NewSourceScratch()
		plainAll := eval.Collect(g.NumNodes(), func(u graph.NodeID, out []float64) []float64 {
			return red.SingleSource(u, ssP, out)
		})
		sE := enh.NewScratch()
		enhAll := eval.Collect(g.NumNodes(), func(u graph.NodeID, out []float64) []float64 {
			return enh.SingleSourceNaive(u, sE, out)
		})
		pm, _ := eval.MaxError(plainAll, truth)
		em, _ := eval.MaxError(enhAll, truth)
		pg, _ := eval.GroupErrors(plainAll, truth)
		eg, _ := eval.GroupErrors(enhAll, truth)
		fmt.Printf("enhancement (5.3):        off max err %.5f (S1 %.2e)   on max err %.5f (S1 %.2e)\n",
			pm, pg.S1, em, eg.S1)

		// Section 6: Alg 6 vs the Alg 3 loop vs the inverted-list approach.
		sources := workload.RandomNodes(g, 50, *seedFlag+5)
		out := make([]float64, g.NumNodes())
		ss := red.NewSourceScratch()
		iv := red.BuildInverted()
		t6, _ := timeBox(len(sources), 5*time.Second, func(i int) { red.SingleSource(sources[i], ss, out) })
		t3, _ := timeBox(len(sources), 5*time.Second, func(i int) { red.SingleSourceNaive(sources[i], sR, out) })
		tIV, _ := timeBox(len(sources), 5*time.Second, func(i int) { iv.SingleSource(sources[i], sR, out) })
		fmt.Printf("single-source:            Alg6 %s   Alg3-loop %s (%.1fx)   inverted lists %s (+%s space)\n",
			fmtDur(t6), fmtDur(t3), float64(t3)/float64(t6), fmtDur(tIV), humanize.Bytes(iv.Bytes()))
	}
	fmt.Println()
	return nil
}

// ------------------------------------------------------------ throughput

// runThroughput measures the query-serving engine (not a paper figure):
// SingleSourceBatch throughput as the source fan-out widens across
// workers, and top-k selection with the size-k heap against the full-sort
// baseline it replaced. The batch path is what POST /batch drives, so
// these numbers bound served throughput on this host.
func runThroughput() error {
	def := []workload.Spec{}
	for _, name := range []string{"GrQc", "Wiki-Vote", "Enron"} {
		s, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("unknown default dataset %q", name)
		}
		def = append(def, s)
	}
	specs, err := selectDatasets(def)
	if err != nil {
		return err
	}
	slingOpt, _, _, err := params(*presetFlag)
	if err != nil {
		return err
	}
	threads, err := parseInts(*threadsFlag)
	if err != nil {
		return err
	}
	fmt.Printf("== Throughput: batch single-source and top-k serving paths (preset %s, scale %g) ==\n", *presetFlag, *scaleFlag)

	fmt.Println("\n-- single-source batch throughput vs workers --")
	w := newTab()
	fmt.Fprintln(w, "dataset\tworkers\tsources\ttotal\tqueries/s\tspeedup")
	type topkRow struct {
		name       string
		heap, sort time.Duration
	}
	var topkRows []topkRow
	for _, spec := range specs {
		g := spec.Generate(*scaleFlag)
		ix, err := core.Build(g, &slingOpt)
		if err != nil {
			return fmt.Errorf("%s: build: %w", spec.Name, err)
		}
		sources := workload.RandomNodes(g, *sourcesFlag, *seedFlag+13)
		var serial time.Duration
		for _, th := range threads {
			start := time.Now()
			if _, err := ix.SingleSourceBatch(nil, sources, th); err != nil {
				return err
			}
			total := time.Since(start)
			if th == threads[0] {
				serial = total
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%.0f\t%.2fx\n",
				spec.Name, th, len(sources), fmtDur(total),
				float64(len(sources))/total.Seconds(), float64(serial)/float64(total))
		}

		// Top-k: heap selection vs the full n log n sort it replaced,
		// over one shared score vector so only selection is timed.
		scores := ix.SingleSource(sources[0], nil, nil)
		row := topkRow{name: spec.Name}
		row.heap, _ = timeBox(2000, 5*time.Second, func(i int) {
			core.SelectTop(scores, 10, sources[0])
		})
		row.sort, _ = timeBox(2000, 5*time.Second, func(i int) {
			fullSortTop(scores, 10, sources[0])
		})
		topkRows = append(topkRows, row)
	}
	w.Flush()

	fmt.Println("\n-- top-10 selection over one score vector --")
	w = newTab()
	fmt.Fprintln(w, "dataset\theap (O(n log k))\tfull sort (O(n log n))\tspeedup")
	for _, r := range topkRows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1fx\n", r.name, fmtDur(r.heap), fmtDur(r.sort), float64(r.sort)/float64(r.heap))
	}
	w.Flush()
	fmt.Println()
	return nil
}

// --------------------------------------------------------------- diskqps

// diskQPSRow is one (dataset, backend, cache, workers) cell of the
// diskqps experiment, written to BENCH_diskqps.json. Backend "readat"
// is the positioned-read engine (one row group per -caches size);
// "mmap" is the zero-copy mapped engine, where the OS page cache is
// the only cache. AllocsPerOp is measured once per row group on a
// warm single-worker pass; the mapped fetch path's contract is that it
// stays at zero.
type diskQPSRow struct {
	Dataset     string  `json:"dataset"`
	Backend     string  `json:"backend"`
	CacheMiB    float64 `json:"cache_mib"`
	Workers     int     `json:"workers"`
	Queries     int     `json:"queries"`
	QPS         float64 `json:"qps"`
	Speedup     float64 `json:"speedup"`
	HitRate     float64 `json:"hit_rate"` // -1 when no entry cache is live
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// allocsPerOp measures heap allocations per single-pair query on a warm
// single-worker pass: the first run settles scratch-pool and cache
// capacities, the second is bracketed by MemStats.Mallocs readings.
func allocsPerOp(pool *core.DiskScratchPool, pairs []workload.Pair, ops int) (float64, error) {
	warm := ops
	if warm > 2048 {
		warm = 2048
	}
	if _, _, err := diskPairRun(pool, pairs, warm, 1); err != nil {
		return 0, err
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, _, err := diskPairRun(pool, pairs, ops, 1); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(ops), nil
}

// runDiskQPS measures the disk-resident serving tier (Section 5.4):
// single-pair QPS as concurrent query goroutines scale, for the
// positioned-read engine at each -caches entry-cache size and — where
// the platform supports it — the zero-copy mmap engine. Before the
// pooled engine existed, disk queries went through one global mutex,
// so QPS was flat in goroutine count; this experiment is the evidence
// that the pooled, cached path scales, and that the mapped path serves
// without allocating.
func runDiskQPS() error {
	def := []workload.Spec{}
	for _, name := range []string{"GrQc", "Wiki-Vote"} {
		s, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("unknown default dataset %q", name)
		}
		def = append(def, s)
	}
	specs, err := selectDatasets(def)
	if err != nil {
		return err
	}
	slingOpt, _, _, err := params(*presetFlag)
	if err != nil {
		return err
	}
	threads, err := parseInts(*threadsFlag)
	if err != nil {
		return err
	}
	var caches []float64
	for _, c := range strings.Split(*cachesFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
		if err != nil {
			return fmt.Errorf("bad cache size %q", c)
		}
		caches = append(caches, v)
	}
	type qpsCfg struct {
		backend  string
		cacheMiB float64
	}
	var cfgs []qpsCfg
	for _, mib := range caches {
		cfgs = append(cfgs, qpsCfg{"readat", mib})
	}
	if core.MmapSupported() {
		cfgs = append(cfgs, qpsCfg{"mmap", 0})
	} else {
		fmt.Println("   (mmap backend skipped: unsupported on this platform)")
	}
	fmt.Printf("== Disk QPS: disk-resident single-pair queries vs goroutines, cache, and engine (preset %s, scale %g) ==\n",
		*presetFlag, *scaleFlag)
	fmt.Println("   (cache rows are pre-warmed; speedup is relative to the first -threads entry of the same row group)")
	var rows []diskQPSRow
	w := newTab()
	fmt.Fprintln(w, "dataset\tbackend\tcache\tworkers\tqueries\ttotal\tqueries/s\tspeedup\thit rate\tallocs/op")
	for _, spec := range specs {
		g := spec.Generate(*scaleFlag)
		ix, err := core.Build(g, &slingOpt)
		if err != nil {
			return fmt.Errorf("%s: build: %w", spec.Name, err)
		}
		dir, err := os.MkdirTemp("", "slingbench-diskqps")
		if err != nil {
			return err
		}
		path := dir + "/index.slix"
		if err := ix.SaveFile(path); err != nil {
			os.RemoveAll(dir)
			return err
		}
		pairs := workload.RandomPairs(g, 4096, *seedFlag+17)
		for _, cfg := range cfgs {
			var d *core.DiskIndex
			if cfg.backend == "mmap" {
				d, err = core.OpenDiskIndexMmap(path, g)
			} else {
				d, err = core.OpenDiskIndex(path, g)
			}
			if err != nil {
				os.RemoveAll(dir)
				return err
			}
			cacheBytes := int64(cfg.cacheMiB * (1 << 20))
			if cacheBytes > 0 {
				d.EnableCache(cacheBytes)
			}
			pool := d.NewScratchPool()
			// Warm the cache over the full query set before any timed
			// cell, so every thread count measures the same steady state
			// and the speedup column reflects concurrency, not the first
			// cell paying the cold misses for the later ones.
			if cacheBytes > 0 {
				if _, _, err := diskPairRun(pool, pairs, len(pairs), 1); err != nil {
					d.Close()
					os.RemoveAll(dir)
					return err
				}
			}
			apo, err := allocsPerOp(pool, pairs, *diskOpsFlag)
			if err != nil {
				d.Close()
				os.RemoveAll(dir)
				return err
			}
			var serial time.Duration
			for _, th := range threads {
				before := d.CacheStats()
				total, elapsed, err := diskPairRun(pool, pairs, *diskOpsFlag, th)
				if err != nil {
					d.Close()
					os.RemoveAll(dir)
					return err
				}
				after := d.CacheStats()
				if th == threads[0] {
					serial = elapsed
				}
				hit := "-"
				hitRate := -1.0
				if looked := (after.Hits - before.Hits) + (after.Misses - before.Misses); looked > 0 {
					hitRate = float64(after.Hits-before.Hits) / float64(looked)
					hit = fmt.Sprintf("%.0f%%", 100*hitRate)
				}
				cacheCol := "off"
				if cacheBytes > 0 {
					cacheCol = humanize.Bytes(cacheBytes)
				}
				if cfg.backend == "mmap" {
					cacheCol = "page"
				}
				fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%s\t%.0f\t%.2fx\t%s\t%.3f\n",
					spec.Name, cfg.backend, cacheCol, th, total, fmtDur(elapsed),
					float64(total)/elapsed.Seconds(), float64(serial)/float64(elapsed), hit, apo)
				w.Flush()
				rows = append(rows, diskQPSRow{
					Dataset:     spec.Name,
					Backend:     cfg.backend,
					CacheMiB:    cfg.cacheMiB,
					Workers:     th,
					Queries:     total,
					QPS:         float64(total) / elapsed.Seconds(),
					Speedup:     float64(serial) / float64(elapsed),
					HitRate:     hitRate,
					AllocsPerOp: apo,
				})
			}
			d.Close()
		}
		os.RemoveAll(dir)
	}
	fmt.Println()
	return writeBenchJSON("BENCH_diskqps.json", rows, "diskqps")
}

// --------------------------------------------------------------- dynamic

// runDynamic measures the updatable-index serving tier: single-pair query
// QPS from -dynworkers goroutines while a writer streams edge updates at
// each -update-rates setting, with background rebuilds every
// -rebuild-every applied ops. Staleness columns sample the affected-node
// frontier and the ops not yet reflected in the serving index; "swaps"
// counts completed epoch rebuilds. Rate 0 is the static baseline the
// other rows are read against.
func runDynamic() error {
	def := []workload.Spec{}
	for _, name := range []string{"GrQc", "Wiki-Vote"} {
		s, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("unknown default dataset %q", name)
		}
		def = append(def, s)
	}
	specs, err := selectDatasets(def)
	if err != nil {
		return err
	}
	slingOpt, _, _, err := params(*presetFlag)
	if err != nil {
		return err
	}
	rates, err := parseInts(*updRatesFlag)
	if err != nil {
		return err
	}
	fmt.Printf("== Dynamic: query QPS and staleness under streaming edge updates (preset %s, scale %g) ==\n",
		*presetFlag, *scaleFlag)
	fmt.Printf("   (%d query goroutines, %v per cell, rebuild every %d ops, %d MC walks)\n",
		*dynWorkersFlag, *dynDurFlag, *dynThreshFlag, *dynWalksFlag)
	w := newTab()
	fmt.Fprintln(w, "dataset\tupd/s\tqueries\tqueries/s\tapplied\tswaps\tavg affected\tmax affected\tmax pending")
	for _, spec := range specs {
		g := spec.Generate(*scaleFlag)
		n := g.NumNodes()
		for _, rate := range rates {
			d, err := dynamic.New(g, dynamic.Options{
				Build:            slingOpt,
				RebuildThreshold: *dynThreshFlag,
				NumWalks:         *dynWalksFlag,
				Seed:             *seedFlag,
			})
			if err != nil {
				return fmt.Errorf("%s: dynamic build: %w", spec.Name, err)
			}
			pairs := workload.RandomPairs(g, 4096, *seedFlag+19)
			deadline := time.Now().Add(*dynDurFlag)
			var queries atomic.Int64
			var wg sync.WaitGroup
			for qw := 0; qw < *dynWorkersFlag; qw++ {
				wg.Add(1)
				go func(qw int) {
					defer wg.Done()
					for i := qw; time.Now().Before(deadline); i++ {
						p := pairs[i%len(pairs)]
						d.SimRank(p.U, p.V)
						queries.Add(1)
					}
				}(qw)
			}
			// Writer: apply a batch every tick sized to hit the target
			// rate; removals pick previously-added synthetic edges so the
			// graph does not drift monotonically.
			var affSum, affMax, pendMax, samples int64
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rng.New(*seedFlag + uint64(rate)*101)
				var synth []dynamic.Op
				const tick = 5 * time.Millisecond
				begin := time.Now()
				issued := 0 // pace against the wall clock, not tick counts,
				// so Apply/Stats cost inside the loop cannot starve the rate
				for time.Now().Before(deadline) {
					time.Sleep(tick)
					perTick := int(float64(rate)*time.Since(begin).Seconds()) - issued
					issued += perTick
					if perTick > 0 {
						ops := make([]dynamic.Op, 0, perTick)
						for i := 0; i < perTick; i++ {
							if len(synth) > 0 && r.Intn(2) == 0 {
								j := r.Intn(len(synth))
								e := synth[j]
								synth[j] = synth[len(synth)-1]
								synth = synth[:len(synth)-1]
								ops = append(ops, dynamic.Op{From: e.From, To: e.To})
							} else {
								ops = append(ops, dynamic.Op{Add: true,
									From: graph.NodeID(r.Intn(n)), To: graph.NodeID(r.Intn(n))})
							}
						}
						res, _, err := d.Apply(ops)
						if err != nil {
							return
						}
						// Only adds that actually changed the graph become
						// removal candidates: an add colliding with a base
						// edge was a no-op, and removing it later would strip
						// the original edge and drift the graph downward.
						for i, or := range res {
							if ops[i].Add && or.Applied {
								synth = append(synth, ops[i])
							}
						}
					}
					st := d.Stats()
					affSum += int64(st.AffectedNodes)
					if int64(st.AffectedNodes) > affMax {
						affMax = int64(st.AffectedNodes)
					}
					if int64(st.StaleOps) > pendMax {
						pendMax = int64(st.StaleOps)
					}
					samples++
				}
			}()
			wg.Wait()
			st := d.Stats()
			d.Close()
			avgAff := "-"
			if samples > 0 {
				avgAff = fmt.Sprintf("%.0f", float64(affSum)/float64(samples))
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%d\t%d\t%s\t%d\t%d\n",
				spec.Name, rate, queries.Load(),
				float64(queries.Load())/dynDurFlag.Seconds(),
				st.TotalOps, st.Rebuilds, avgAff, affMax, pendMax)
		}
	}
	w.Flush()
	fmt.Println()
	return nil
}

// ------------------------------------------------------------- querier

// runQuerier drives every facade backend through the one sling.Querier
// interface with a single benchmark loop: single-pair latency, top-10
// latency, and batch single-source throughput per backend. Because the
// loop only sees the interface, a future backend (sharded, replicated,
// remote) lands in this table by adding one constructor line.
func runQuerier() error {
	def := []workload.Spec{}
	for _, name := range []string{"GrQc", "Wiki-Vote"} {
		s, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("unknown default dataset %q", name)
		}
		def = append(def, s)
	}
	specs, err := selectDatasets(def)
	if err != nil {
		return err
	}
	slingOpt, _, _, err := params(*presetFlag)
	if err != nil {
		return err
	}
	fmt.Printf("== Querier: the uniform interface across backends (preset %s, scale %g) ==\n",
		*presetFlag, *scaleFlag)
	w := newTab()
	fmt.Fprintln(w, "dataset\tbackend\tpair\ttop-10\tbatch sources/s")
	ctx := context.Background()
	var rows []querierRow
	for _, spec := range specs {
		g := spec.Generate(*scaleFlag)
		ix, err := sling.Build(g, sling.WithOptions(slingOpt))
		if err != nil {
			return fmt.Errorf("%s: build: %w", spec.Name, err)
		}
		dir, err := os.MkdirTemp("", "slingbench-querier")
		if err != nil {
			return err
		}
		path := dir + "/index.slix"
		if err := ix.Save(path); err != nil {
			os.RemoveAll(dir)
			return err
		}
		di, err := sling.OpenDiskWithOptions(path, g, &sling.DiskOptions{CacheBytes: 4 << 20, Workers: 4})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		dx, err := sling.NewDynamic(g, &sling.DynamicOptions{NumWalks: *dynWalksFlag, Workers: 4},
			sling.WithOptions(slingOpt))
		if err != nil {
			di.Close()
			os.RemoveAll(dir)
			return err
		}

		pairs := workload.RandomPairs(g, *pairsFlag, *seedFlag+23)
		sources := workload.RandomNodes(g, *sourcesFlag, *seedFlag+29)
		backends := []struct {
			name string
			q    sling.Querier
		}{
			{"memory", ix},
			{"disk", di},
			{"dynamic", dx},
		}
		var benchErr error
		for _, be := range backends {
			q := be.q
			// Per-op latencies go through the same fixed-bucket histograms
			// the server's /metrics exposes, so the JSON artifact's
			// quantiles match what operators would scrape.
			reg := metrics.NewRegistry()
			pairH := reg.Histogram("pair_seconds", "single-pair latency", metrics.LatencyBuckets)
			topH := reg.Histogram("topk_seconds", "top-k latency", metrics.LatencyBuckets)
			pairWall, _ := timeBox(len(pairs), *budgetFlag, func(i int) {
				t0 := time.Now()
				if _, err := q.SimRank(ctx, pairs[i].U, pairs[i].V); err != nil && benchErr == nil {
					benchErr = err
				}
				pairH.ObserveSince(t0)
			})
			topWall, _ := timeBox(len(sources), *budgetFlag, func(i int) {
				t0 := time.Now()
				if _, err := q.TopK(ctx, sources[i], 10); err != nil && benchErr == nil {
					benchErr = err
				}
				topH.ObserveSince(t0)
			})
			start := time.Now()
			if _, err := q.SingleSourceBatch(ctx, sources); err != nil && benchErr == nil {
				benchErr = err
			}
			batchQPS := float64(len(sources)) / time.Since(start).Seconds()
			rows = append(rows, querierRow{
				Dataset:     spec.Name,
				Backend:     be.name,
				Pair:        histStats(pairH, pairWall*time.Duration(pairH.Count())),
				TopK:        histStats(topH, topWall*time.Duration(topH.Count())),
				BatchPerSec: batchQPS,
			})
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.0f\n",
				spec.Name, be.name, fmtDur(pairWall), fmtDur(topWall), batchQPS)
			w.Flush()
		}
		dx.Close()
		di.Close()
		os.RemoveAll(dir)
		if benchErr != nil {
			return fmt.Errorf("%s: querier bench: %w", spec.Name, benchErr)
		}
	}
	fmt.Println()
	return writeBenchJSON("BENCH_querier.json", rows, "querier")
}

// diskPairRun fires count single-pair disk queries across workers
// goroutines pulling from a shared atomic counter, and returns how many
// ran and the wall time.
func diskPairRun(pool *core.DiskScratchPool, pairs []workload.Pair, count, workers int) (int, time.Duration, error) {
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				p := pairs[i%len(pairs)]
				if _, err := pool.SimRank(p.U, p.V); err != nil {
					// Copy before taking the address: &err on the loop
					// variable would heap-allocate it every iteration,
					// polluting the allocs/op this benchmark reports.
					e := err
					firstErr.CompareAndSwap(nil, &e)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if ep := firstErr.Load(); ep != nil {
		return 0, 0, *ep
	}
	return count, elapsed, nil
}

// fullSortTop is the pre-heap top-k baseline: materialize every positive
// candidate and sort all of them.
func fullSortTop(scores []float64, k int, skip graph.NodeID) []core.TopEntry {
	out := make([]core.TopEntry, 0, len(scores))
	for v, sc := range scores {
		if graph.NodeID(v) == skip || sc <= 0 {
			continue
		}
		out = append(out, core.TopEntry{Node: graph.NodeID(v), Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
