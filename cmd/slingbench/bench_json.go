package main

// Machine-readable benchmark artifacts. The querier and catalog
// experiments double as regression baselines for the serving tier, so
// besides the human tables they write BENCH_querier.json and
// BENCH_catalog.json (into -benchout, default the working directory)
// with QPS and p50/p99 latencies read from the same fixed-bucket
// histograms GET /metrics exposes — the numbers CI trend-lines are the
// numbers operators would scrape in production.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sling"
	"sling/internal/catalog"
	"sling/internal/metrics"
	"sling/internal/server"
	"sling/internal/workload"
)

var (
	benchOutFlag = flag.String("benchout", ".", "directory for BENCH_*.json artifacts")
	catOpsFlag   = flag.Int("catops", 4000, "catalog: single-pair requests per graph")
	catWorkFlag  = flag.Int("catworkers", 4, "catalog: concurrent client goroutines")
)

// latencyStats is one operation family's reading: throughput plus the
// histogram's interpolated quantiles.
type latencyStats struct {
	Ops   uint64  `json:"ops"`
	QPS   float64 `json:"qps"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
}

func histStats(h *metrics.Histogram, wall time.Duration) latencyStats {
	n := h.Count()
	var qps float64
	if wall > 0 {
		qps = float64(n) / wall.Seconds()
	}
	return latencyStats{
		Ops:   n,
		QPS:   qps,
		P50us: h.Quantile(0.50) * 1e6,
		P99us: h.Quantile(0.99) * 1e6,
	}
}

type benchDoc struct {
	Experiment string      `json:"experiment"`
	Preset     string      `json:"preset"`
	Scale      float64     `json:"scale"`
	Rows       interface{} `json:"rows"`
}

func writeBenchJSON(name string, rows interface{}, experiment string) error {
	path := filepath.Join(*benchOutFlag, name)
	buf, err := json.MarshalIndent(benchDoc{
		Experiment: experiment,
		Preset:     *presetFlag,
		Scale:      *scaleFlag,
		Rows:       rows,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}

type querierRow struct {
	Dataset     string       `json:"dataset"`
	Backend     string       `json:"backend"`
	Pair        latencyStats `json:"pair"`
	TopK        latencyStats `json:"topk"`
	BatchPerSec float64      `json:"batch_sources_per_sec"`
}

// ---------------------------------------------------------------- catalog

type catalogRow struct {
	Graph   string       `json:"graph"`
	Mode    string       `json:"mode"`
	Pair    latencyStats `json:"pair"`
	HTTPErr uint64       `json:"http_errors"`
}

// writeEdgeList dumps a workload graph as the "from to" lines a catalog
// manifest entry loads.
func writeEdgeList(path string, g *sling.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	buf := make([]byte, 0, 1<<16)
	g.Edges(func(from, to sling.NodeID) bool {
		buf = append(buf, fmt.Sprintf("%d %d\n", from, to)...)
		if len(buf) >= 1<<16-64 {
			if _, err := f.Write(buf); err != nil {
				werr = err
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if werr == nil && len(buf) > 0 {
		_, werr = f.Write(buf)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// histCount reads the current observation count of one graph's request
// histogram.
func histCount(srv *server.Server, id string) uint64 {
	for _, pt := range srv.Registry().Snapshot() {
		if pt.Name == catalog.MetricLatency && len(pt.Labels) == 1 && pt.Labels[0].Value == id {
			return pt.Count
		}
	}
	return 0
}

// runCatalog stands up the full multi-tenant stack — manifest, catalog,
// HTTP server — over one dataset served three ways (memory, disk,
// dynamic), drives concurrent single-pair traffic through the real
// /g/{id}/simrank routes, and reports per-graph QPS and latency
// quantiles from the catalog's own request histograms.
func runCatalog() error {
	spec, ok := workload.ByName("GrQc")
	if !ok {
		return fmt.Errorf("unknown dataset GrQc")
	}
	if *datasetsFlag != "" {
		specs, err := selectDatasets([]workload.Spec{spec})
		if err != nil {
			return err
		}
		spec = specs[0]
	}
	slingOpt, _, _, err := params(*presetFlag)
	if err != nil {
		return err
	}
	g := spec.Generate(*scaleFlag)

	dir, err := os.MkdirTemp("", "slingbench-catalog")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	edges := filepath.Join(dir, "graph.txt")
	if err := writeEdgeList(edges, g); err != nil {
		return err
	}
	// The catalog loads the edge list, which renumbers nodes by first
	// appearance and drops isolated ones — so the prebuilt disk index and
	// the query workload must come from the loaded graph, and requests go
	// out in its label space.
	gl, labels, err := sling.LoadEdgeListFile(edges, false)
	if err != nil {
		return err
	}
	ix, err := sling.Build(gl, sling.WithOptions(slingOpt))
	if err != nil {
		return err
	}
	slix := filepath.Join(dir, "graph.slix")
	err = ix.Save(slix)
	ix.Close()
	if err != nil {
		return err
	}

	m := catalog.Manifest{
		Default: "mem",
		Graphs: []catalog.GraphSpec{
			{ID: "mem", Graph: edges, Eps: slingOpt.Eps, Seed: slingOpt.Seed},
			{ID: "disk", Graph: edges, Mode: "disk", Index: slix, CacheBytes: 4 << 20},
			{ID: "dyn", Graph: edges, Mode: "dynamic", Eps: slingOpt.Eps, Seed: slingOpt.Seed,
				Walks: *dynWalksFlag},
		},
	}
	cat, err := catalog.New(m, nil)
	if err != nil {
		return err
	}
	defer cat.Close()
	srv, err := server.NewCatalog(cat, server.Config{})
	if err != nil {
		return err
	}

	fmt.Printf("== Catalog: multi-tenant serving, %s three ways (preset %s, scale %g) ==\n",
		spec.Name, *presetFlag, *scaleFlag)
	pairs := workload.RandomPairs(gl, 4096, *seedFlag+31)
	w := newTab()
	fmt.Fprintln(w, "graph\tmode\tqps\tp50\tp99\thttp errors")
	var rows []catalogRow
	for gi, id := range []string{"mem", "disk", "dyn"} {
		mode := m.Graphs[gi].Mode
		if mode == "" {
			mode = "memory"
		}
		// Warm the entry first so the lazy open (graph load + index
		// build) doesn't land inside the timed window.
		warm := httptest.NewRequest("GET",
			fmt.Sprintf("/g/%s/simrank?u=%d&v=%d", id, labels[pairs[0].U], labels[pairs[0].V]), nil)
		warmRec := httptest.NewRecorder()
		srv.ServeHTTP(warmRec, warm)
		if warmRec.Code != 200 {
			return fmt.Errorf("catalog bench: warm-up for %s: http %d", id, warmRec.Code)
		}
		base := histCount(srv, id)

		var next, httpErrs atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < *catWorkFlag; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= *catOpsFlag {
						return
					}
					p := pairs[i%len(pairs)]
					req := httptest.NewRequest("GET",
						fmt.Sprintf("/g/%s/simrank?u=%d&v=%d", id, labels[p.U], labels[p.V]), nil)
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, req)
					if rec.Code != 200 {
						httpErrs.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)

		// Read the numbers back out of the same per-graph histogram the
		// /metrics exposition serves.
		var st latencyStats
		for _, pt := range srv.Registry().Snapshot() {
			if pt.Name != catalog.MetricLatency || len(pt.Labels) != 1 || pt.Labels[0].Value != id {
				continue
			}
			st = latencyStats{
				Ops:   pt.Count - base,
				QPS:   float64(pt.Count-base) / wall.Seconds(),
				P50us: pt.P50 * 1e6,
				P99us: pt.P99 * 1e6,
			}
		}
		rows = append(rows, catalogRow{Graph: id, Mode: mode, Pair: st, HTTPErr: uint64(httpErrs.Load())})
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%s\t%s\t%d\n", id, mode, st.QPS,
			fmtDur(time.Duration(st.P50us*1e3)), fmtDur(time.Duration(st.P99us*1e3)), httpErrs.Load())
		w.Flush()
	}
	if n := rows[0].HTTPErr + rows[1].HTTPErr + rows[2].HTTPErr; n > 0 {
		return fmt.Errorf("catalog bench: %d requests failed", n)
	}
	return writeBenchJSON("BENCH_catalog.json", rows, "catalog")
}
