package main

// The sharded experiment bounds the scatter/gather serving tier
// (internal/shard): one dataset served unsharded and at increasing
// in-process shard counts, measuring what the fan-out costs per query
// family. Pair queries touch at most two shards; single-source and
// top-k broadcast to all of them, so their latency tracks the slowest
// shard plus the merge. Not a paper figure — SLING the paper serves one
// index — but it pins the router's overhead and writes
// BENCH_sharded.json so CI trend-lines QPS vs shard count.

import (
	"context"
	"flag"
	"fmt"
	"time"

	"sling"
	"sling/internal/metrics"
	"sling/internal/shard"
	"sling/internal/workload"
)

var shardCountsFlag = flag.String("shard-counts", "1,2,4,8", "sharded: comma-separated shard counts to sweep")

type shardedRow struct {
	Dataset string `json:"dataset"`
	// Shards is the fan-out width; 0 is the unsharded direct index.
	Shards int          `json:"shards"`
	Pair   latencyStats `json:"pair"`
	Source latencyStats `json:"source"`
	TopK   latencyStats `json:"topk"`
}

// benchQuerier drives one backend through the three query families and
// reads the numbers from fixed-bucket serving histograms.
func benchQuerier(q sling.Querier, pairs []workload.Pair, sources []sling.NodeID) (pair, source, topk latencyStats, err error) {
	ctx := context.Background()
	reg := metrics.NewRegistry()
	pairH := reg.Histogram("pair_seconds", "single-pair latency", metrics.LatencyBuckets)
	srcH := reg.Histogram("source_seconds", "single-source latency", metrics.LatencyBuckets)
	topH := reg.Histogram("topk_seconds", "top-k latency", metrics.LatencyBuckets)
	var benchErr error
	var row []float64
	pairWall, _ := timeBox(len(pairs), *budgetFlag, func(i int) {
		t0 := time.Now()
		if _, e := q.SimRank(ctx, pairs[i].U, pairs[i].V); e != nil && benchErr == nil {
			benchErr = e
		}
		pairH.ObserveSince(t0)
	})
	srcWall, _ := timeBox(len(sources), *budgetFlag, func(i int) {
		t0 := time.Now()
		var e error
		if row, e = q.SingleSource(ctx, sources[i], row); e != nil && benchErr == nil {
			benchErr = e
		}
		srcH.ObserveSince(t0)
	})
	topWall, _ := timeBox(len(sources), *budgetFlag, func(i int) {
		t0 := time.Now()
		if _, e := q.TopK(ctx, sources[i], 10); e != nil && benchErr == nil {
			benchErr = e
		}
		topH.ObserveSince(t0)
	})
	if benchErr != nil {
		return pair, source, topk, benchErr
	}
	pair = histStats(pairH, pairWall*time.Duration(pairH.Count()))
	source = histStats(srcH, srcWall*time.Duration(srcH.Count()))
	topk = histStats(topH, topWall*time.Duration(topH.Count()))
	return pair, source, topk, nil
}

// runSharded sweeps QPS vs shard count over in-process shards.
func runSharded() error {
	spec, ok := workload.ByName("GrQc")
	if !ok {
		return fmt.Errorf("unknown dataset GrQc")
	}
	if *datasetsFlag != "" {
		specs, err := selectDatasets([]workload.Spec{spec})
		if err != nil {
			return err
		}
		spec = specs[0]
	}
	counts, err := parseInts(*shardCountsFlag)
	if err != nil {
		return fmt.Errorf("bad -shard-counts: %w", err)
	}
	slingOpt, _, _, err := params(*presetFlag)
	if err != nil {
		return err
	}
	g := spec.Generate(*scaleFlag)
	ix, err := sling.Build(g, sling.WithOptions(slingOpt))
	if err != nil {
		return fmt.Errorf("%s: build: %w", spec.Name, err)
	}
	defer ix.Close()

	fmt.Printf("== Sharded: scatter/gather QPS vs shard count, %s (preset %s, scale %g) ==\n",
		spec.Name, *presetFlag, *scaleFlag)
	pairs := workload.RandomPairs(g, *pairsFlag, *seedFlag+41)
	sources := workload.RandomNodes(g, *sourcesFlag, *seedFlag+43)
	w := newTab()
	fmt.Fprintln(w, "dataset\tshards\tpair qps\tsource qps\ttop-10 qps")
	var rows []shardedRow

	record := func(nshards int, q sling.Querier) error {
		pair, source, topk, err := benchQuerier(q, pairs, sources)
		if err != nil {
			return fmt.Errorf("%s shards=%d: %w", spec.Name, nshards, err)
		}
		rows = append(rows, shardedRow{Dataset: spec.Name, Shards: nshards, Pair: pair, Source: source, TopK: topk})
		label := fmt.Sprintf("%d", nshards)
		if nshards == 0 {
			label = "unsharded"
		}
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.0f\n", spec.Name, label, pair.QPS, source.QPS, topk.QPS)
		return nil
	}

	// The unsharded index is the baseline every shard count is read
	// against: the router's overhead is the gap to this row.
	if err := record(0, ix); err != nil {
		return err
	}
	for _, nshards := range counts {
		m, clients := shard.InProcess(ix, nshards)
		q, err := shard.New(m, clients, nil)
		if err != nil {
			return err
		}
		runErr := record(nshards, q)
		q.Close()
		if runErr != nil {
			return runErr
		}
	}
	w.Flush()
	fmt.Println()
	return writeBenchJSON("BENCH_sharded.json", rows, "sharded")
}
