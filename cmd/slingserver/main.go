// Command slingserver serves SimRank queries over HTTP from a SLING
// index. It either loads a prebuilt index (slingtool build) or builds one
// at startup.
//
//	slingserver -graph g.txt [-undirected] [-index idx.sling] [-eps 0.025] [-addr :8080] [-batch-workers N]
//	slingserver -graph g.txt -index idx.sling -disk [-mmap] [-cache-bytes N]
//	slingserver -graph g.txt -dynamic [-rebuild-threshold N] [-dyn-walks N] [-dyn-depth N] [-durable DIR]
//	slingserver -catalog manifest.json [-addr :8080]
//	slingserver -shards manifest.json [-addr :8080]
//
// With -disk the index file stays on disk (Section 5.4): only O(n)
// metadata is memory-resident, queries fetch HP entries with concurrent
// positioned reads over pooled scratch, and -cache-bytes bounds a
// sharded LRU cache of decoded entries so hot nodes skip I/O. Adding
// -mmap memory-maps the index instead and serves the entries as
// zero-copy typed views — no read syscalls, no decode, the OS page
// cache is the only cache (-cache-bytes is then ignored); on platforms
// without mmap support it falls back to positioned reads and says so.
//
// With -dynamic the graph accepts edge updates while serving: POST
// /update applies add/remove operations, queries touching updated
// regions fall back to fresh Monte Carlo estimation (-dyn-walks walks,
// -dyn-depth truncation), and the index rebuilds in the background after
// every -rebuild-threshold applied ops (0 = only via POST /rebuild),
// swapping epochs with zero query downtime. Dynamic mode builds at
// startup — unless -durable DIR holds earlier state, in which case the
// index restores from its latest snapshot plus WAL tail instead, so a
// restart loses nothing. With -durable every applied update batch
// journals (fsynced unless -durable-nosync) before it is acknowledged,
// rebuild epoch swaps write snapshots, and POST /snapshot checkpoints on
// demand.
//
// With -shards the server routes by scatter/gather over a sharded
// deployment: the manifest (written by `slingtool shard split`) assigns
// each shard a contiguous node range and either a per-shard SLIX file
// (served in-process) or a base URL of a remote slingserver whose
// /shard endpoints it drives. Pair queries join the two endpoints'
// index fragments, single-source broadcasts the source fragment and
// gathers per-shard score slices, and top-k merges per-shard k-pruned
// lists — all bitwise-identical to serving the unsharded index. GET
// /metrics exposes per-shard fan-out latency and error series.
//
// With -catalog the server is multi-tenant: the JSON manifest declares
// many graphs (each memory, disk, or dynamic), lazily opened on first
// request, LRU-evicted under the manifest's global memory budget, and
// rate-limited by per-graph quotas (429 + Retry-After). Queries route by
// graph ID — GET /g/{id}/simrank and friends — while the un-prefixed
// legacy paths alias the manifest's default graph; GET /graphs lists the
// catalog.
//
// Endpoints (JSON): GET /simrank?u=&v=  /source?u=[&limit=]  /topk?u=&k=
// /stats  /healthz, plus POST /batch accepting a JSON array of
// simrank/source/topk operations executed concurrently on a worker pool
// bounded by -batch-workers. Node parameters use the edge list's original
// labels. GET /metrics serves every mode's instruments in Prometheus
// text exposition format.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"sling"
	"sling/internal/catalog"
	"sling/internal/httpclient"
	"sling/internal/humanize"
	"sling/internal/metrics"
	"sling/internal/server"
	"sling/internal/shard"
)

func main() {
	graphPath := flag.String("graph", "", "edge list file (required)")
	undirected := flag.Bool("undirected", false, "treat edges as undirected")
	indexPath := flag.String("index", "", "prebuilt index (optional; builds at startup otherwise)")
	eps := flag.Float64("eps", 0.025, "worst-case additive error when building")
	workers := flag.Int("workers", 1, "build parallelism")
	seed := flag.Uint64("seed", 1, "build seed")
	addr := flag.String("addr", ":8080", "listen address")
	batchWorkers := flag.Int("batch-workers", 0, "concurrent ops per /batch request (default GOMAXPROCS)")
	maxBatchOps := flag.Int("max-batch-ops", 0, "max ops per /batch request (default 4096)")
	disk := flag.Bool("disk", false, "serve disk-resident from -index: only O(n) metadata in memory")
	useMmap := flag.Bool("mmap", false, "with -disk: memory-map the index and serve zero-copy (falls back to positioned reads where unsupported)")
	cacheBytes := flag.Int64("cache-bytes", 0, "entry-cache budget for -disk mode (0 = no cache; ignored with -mmap)")
	dynamic := flag.Bool("dynamic", false, "accept edge updates while serving (POST /update, /rebuild)")
	rebuildThreshold := flag.Int("rebuild-threshold", 0, "applied update ops that trigger a background rebuild (0 = manual)")
	dynWalks := flag.Int("dyn-walks", 4096, "MC walks per affected-node estimate in -dynamic mode (0 = derive the guaranteed count)")
	dynDepth := flag.Int("dyn-depth", 0, "walk truncation depth in -dynamic mode (0 = derive from eps)")
	durableDir := flag.String("durable", "", "durable state directory for -dynamic mode: updates journal to a WAL there, rebuilds snapshot, and restart restores instead of rebuilding")
	durableNoSync := flag.Bool("durable-nosync", false, "skip fsync on WAL appends (faster; crash may lose the unsynced tail)")
	catalogPath := flag.String("catalog", "", "graph-catalog manifest (JSON); serves many graphs, routing by /g/{id}/")
	shardsPath := flag.String("shards", "", "shard routing manifest (slingtool shard split); serves scatter/gather over per-shard indexes")
	flag.Parse()

	if *shardsPath != "" {
		if *graphPath != "" || *disk || *dynamic || *indexPath != "" || *catalogPath != "" {
			fmt.Fprintln(os.Stderr, "slingserver: -shards carries its own graph and index configuration and is incompatible with -graph/-index/-disk/-dynamic/-catalog")
			flag.Usage()
			os.Exit(2)
		}
		handler, q, err := newSharded(*shardsPath, server.Config{
			BatchWorkers: *batchWorkers,
			MaxBatchOps:  *maxBatchOps,
		})
		if err != nil {
			log.Fatalf("sharded mode: %v", err)
		}
		defer q.Close()
		serve(*addr, handler)
		return
	}

	if *catalogPath != "" {
		if *graphPath != "" || *disk || *dynamic || *indexPath != "" {
			fmt.Fprintln(os.Stderr, "slingserver: -catalog carries its own per-graph configuration and is incompatible with -graph/-index/-disk/-dynamic")
			flag.Usage()
			os.Exit(2)
		}
		cat, err := catalog.Load(*catalogPath, nil)
		if err != nil {
			log.Fatalf("loading catalog: %v", err)
		}
		defer cat.Close()
		handler, err := server.NewCatalog(cat, server.Config{
			BatchWorkers: *batchWorkers,
			MaxBatchOps:  *maxBatchOps,
		})
		if err != nil {
			log.Fatalf("creating server: %v", err)
		}
		ids := cat.IDs()
		log.Printf("catalog %s: %d graphs %v, default %q", *catalogPath, len(ids), ids, cat.DefaultID())
		serve(*addr, handler)
		return
	}
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "slingserver: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	if *disk && *indexPath == "" {
		fmt.Fprintln(os.Stderr, "slingserver: -disk requires -index (build one with slingtool)")
		flag.Usage()
		os.Exit(2)
	}
	if *useMmap && !*disk {
		fmt.Fprintln(os.Stderr, "slingserver: -mmap requires -disk (it maps the on-disk index)")
		flag.Usage()
		os.Exit(2)
	}
	if *dynamic && (*disk || *indexPath != "") {
		fmt.Fprintln(os.Stderr, "slingserver: -dynamic builds at startup and is incompatible with -disk/-index")
		flag.Usage()
		os.Exit(2)
	}
	if *durableDir != "" && !*dynamic {
		fmt.Fprintln(os.Stderr, "slingserver: -durable requires -dynamic (only the updatable backend journals)")
		flag.Usage()
		os.Exit(2)
	}
	if *dynamic && *undirected {
		// POST /update applies directed ops; on a graph loaded with both
		// directions per line a single add would silently break the
		// undirected invariant. Pre-expand the edge list and send both
		// directions per update instead.
		fmt.Fprintln(os.Stderr, "slingserver: -dynamic serves directed updates and is incompatible with -undirected (expand the edge list and send both directions per update)")
		flag.Usage()
		os.Exit(2)
	}
	g, labels, err := sling.LoadEdgeListFile(*graphPath, *undirected)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	log.Printf("graph: n=%d m=%d", g.NumNodes(), g.NumEdges())

	cfg := server.Config{
		BatchWorkers: *batchWorkers,
		MaxBatchOps:  *maxBatchOps,
	}
	var handler http.Handler
	if *dynamic {
		start := time.Now()
		do := &sling.DynamicOptions{
			RebuildThreshold: *rebuildThreshold,
			NumWalks:         *dynWalks,
			Depth:            *dynDepth,
			DurableDir:       *durableDir,
			DurableNoSync:    *durableNoSync,
		}
		bopts := []sling.BuildOption{
			sling.WithEps(*eps), sling.WithWorkers(*workers), sling.WithSeed(*seed),
		}
		var dx *sling.DynamicIndex
		how := "built"
		if *durableDir != "" {
			// Restore-or-create: a populated durable directory is the
			// authoritative state (it holds updates the edge list never
			// saw); a fresh one starts from the edge list.
			dx, err = sling.RestoreDynamic(do, bopts...)
			switch {
			case err == nil:
				how = "restored"
			case errors.Is(err, sling.ErrNoDurableState):
				dx, err = sling.NewDynamic(g, do, bopts...)
			}
		} else {
			dx, err = sling.NewDynamic(g, do, bopts...)
		}
		if err != nil {
			log.Fatalf("building dynamic index: %v", err)
		}
		defer dx.Close()
		st := dx.Stats()
		log.Printf("dynamic index %s in %v (epoch %d, %d MC walks, depth %d, rebuild threshold %d, durable LSN %d)",
			how, time.Since(start).Round(time.Millisecond), st.Epoch, st.NumWalks, st.Depth, st.RebuildThreshold, st.Durable.LSN)
		handler, err = server.NewDynamic(dx, labels, cfg)
		if err != nil {
			log.Fatalf("creating server: %v", err)
		}
	} else if *disk {
		di, err := sling.OpenDiskWithOptions(*indexPath, g, &sling.DiskOptions{CacheBytes: *cacheBytes, Mmap: *useMmap})
		if err != nil {
			log.Fatalf("opening disk index: %v", err)
		}
		defer di.Close()
		mode := "positioned reads"
		if di.Mapped() {
			mode = "memory-mapped (zero-copy)"
		} else if *useMmap {
			mode = "positioned reads (mmap unsupported here; fell back)"
		}
		log.Printf("disk index %s: %d entries on disk, %s resident, %s, cache budget %d bytes",
			*indexPath, di.NumEntries(), humanize.Bytes(di.Bytes()), mode, *cacheBytes)
		handler, err = server.NewDisk(di, labels, cfg)
		if err != nil {
			log.Fatalf("creating server: %v", err)
		}
	} else {
		var ix *sling.Index
		if *indexPath != "" {
			ix, err = sling.Open(*indexPath, g)
			if err != nil {
				log.Fatalf("opening index: %v", err)
			}
			log.Printf("index loaded from %s (%d entries)", *indexPath, ix.Stats().Entries)
		} else {
			start := time.Now()
			ix, err = sling.Build(g, sling.WithEps(*eps), sling.WithWorkers(*workers), sling.WithSeed(*seed))
			if err != nil {
				log.Fatalf("building index: %v", err)
			}
			log.Printf("index built in %v (%d entries, error bound %.4g)",
				time.Since(start).Round(time.Millisecond), ix.Stats().Entries, ix.ErrorBound())
		}
		handler, err = server.NewWithConfig(ix, labels, cfg)
		if err != nil {
			log.Fatalf("creating server: %v", err)
		}
	}

	serve(*addr, handler)
}

// newSharded assembles the scatter/gather router from a shard manifest:
// the shared graph, one client per shard (in-process over a SLIX file,
// or remote over HTTP), and a server whose registry also carries the
// router's per-shard fan-out instruments.
func newSharded(manifestPath string, cfg server.Config) (http.Handler, *shard.Querier, error) {
	m, err := shard.Load(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	if m.Graph == "" {
		return nil, nil, fmt.Errorf("manifest %s names no graph", manifestPath)
	}
	g, labels, err := sling.LoadEdgeListFile(shard.Resolve(manifestPath, m.Graph), m.Undirected)
	if err != nil {
		return nil, nil, fmt.Errorf("loading graph: %w", err)
	}
	log.Printf("graph: n=%d m=%d", g.NumNodes(), g.NumEdges())
	clients := make([]shard.Client, len(m.Shards))
	closeAll := func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}
	for i, si := range m.Shards {
		switch {
		case si.URL != "":
			cl, err := httpclient.New(httpclient.Options{
				BaseURL: si.URL, Nodes: m.Nodes, Name: fmt.Sprintf("shard%d", si.ID),
			})
			if err != nil {
				closeAll()
				return nil, nil, err
			}
			clients[i] = cl
			log.Printf("shard %d: nodes [%d,%d) remote at %s", si.ID, si.Lo, si.Hi, si.URL)
		case si.Path != "":
			sx, err := sling.Open(shard.Resolve(manifestPath, si.Path), g)
			if err != nil {
				closeAll()
				return nil, nil, fmt.Errorf("opening shard %d: %w", si.ID, err)
			}
			clients[i] = shard.NewLocal(sx)
			log.Printf("shard %d: nodes [%d,%d), %d entries, %s in-process",
				si.ID, si.Lo, si.Hi, si.Entries, humanize.Bytes(sx.Bytes()))
		default:
			closeAll()
			return nil, nil, fmt.Errorf("shard %d has neither path nor url", si.ID)
		}
	}
	// One registry for the server and the router, so GET /metrics
	// exposes the per-shard fan-out series alongside the HTTP ones.
	reg := metrics.NewRegistry()
	cfg.Registry = reg
	q, err := shard.New(m, clients, reg)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	handler, err := server.NewQuerier(q, labels, cfg)
	if err != nil {
		q.Close()
		return nil, nil, err
	}
	log.Printf("sharded serving: %d shards over %d nodes (c=%g, eps=%g)", len(m.Shards), m.Nodes, m.C, m.Eps)
	return handler, q, nil
}

func serve(addr string, handler http.Handler) {
	srv := &http.Server{
		Addr:         addr,
		Handler:      handler,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Printf("serving on %s", addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
