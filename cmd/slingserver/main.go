// Command slingserver serves SimRank queries over HTTP from a SLING
// index. It either loads a prebuilt index (slingtool build) or builds one
// at startup.
//
//	slingserver -graph g.txt [-undirected] [-index idx.sling] [-eps 0.025] [-addr :8080] [-batch-workers N]
//
// Endpoints (JSON): GET /simrank?u=&v=  /source?u=[&limit=]  /topk?u=&k=
// /stats  /healthz, plus POST /batch accepting a JSON array of
// simrank/source/topk operations executed concurrently on a worker pool
// bounded by -batch-workers. Node parameters use the edge list's original
// labels.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"sling"
	"sling/internal/server"
)

func main() {
	graphPath := flag.String("graph", "", "edge list file (required)")
	undirected := flag.Bool("undirected", false, "treat edges as undirected")
	indexPath := flag.String("index", "", "prebuilt index (optional; builds at startup otherwise)")
	eps := flag.Float64("eps", 0.025, "worst-case additive error when building")
	workers := flag.Int("workers", 1, "build parallelism")
	seed := flag.Uint64("seed", 1, "build seed")
	addr := flag.String("addr", ":8080", "listen address")
	batchWorkers := flag.Int("batch-workers", 0, "concurrent ops per /batch request (default GOMAXPROCS)")
	maxBatchOps := flag.Int("max-batch-ops", 0, "max ops per /batch request (default 4096)")
	flag.Parse()

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "slingserver: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, labels, err := sling.LoadEdgeListFile(*graphPath, *undirected)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	log.Printf("graph: n=%d m=%d", g.NumNodes(), g.NumEdges())

	var ix *sling.Index
	if *indexPath != "" {
		ix, err = sling.Open(*indexPath, g)
		if err != nil {
			log.Fatalf("opening index: %v", err)
		}
		log.Printf("index loaded from %s (%d entries)", *indexPath, ix.Stats().Entries)
	} else {
		start := time.Now()
		ix, err = sling.Build(g, &sling.Options{Eps: *eps, Workers: *workers, Seed: *seed})
		if err != nil {
			log.Fatalf("building index: %v", err)
		}
		log.Printf("index built in %v (%d entries, error bound %.4g)",
			time.Since(start).Round(time.Millisecond), ix.Stats().Entries, ix.ErrorBound())
	}

	srv := &http.Server{
		Addr:         *addr,
		Handler: server.NewWithConfig(ix, labels, server.Config{
			BatchWorkers: *batchWorkers,
			MaxBatchOps:  *maxBatchOps,
		}),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
