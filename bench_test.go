// Benchmarks mirroring the paper's evaluation, one testing.B target per
// table/figure series (see DESIGN.md's experiment index). They run on the
// smaller dataset stand-ins so `go test -bench=.` terminates quickly; the
// full sweeps live in cmd/slingbench.
package sling

import (
	"context"
	"sort"
	"sync"
	"testing"

	"sling/internal/core"
	"sling/internal/extsort"
	"sling/internal/linearize"
	"sling/internal/mc"
	"sling/internal/workload"
)

// benchEps is the "fast" preset of cmd/slingbench.
const benchEps = 0.1

type benchSetup struct {
	g     *Graph
	sling *core.Index
	lin   *linearize.Index
	mc    *mc.Index
	pairs []workload.Pair
	nodes []NodeID
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchSetup{}
)

// setup builds (once per dataset) everything the figure benchmarks need.
func setup(b *testing.B, dataset string) *benchSetup {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchCache[dataset]; ok {
		return s
	}
	spec, ok := workload.ByName(dataset)
	if !ok {
		b.Fatalf("unknown dataset %q", dataset)
	}
	g := spec.Generate(1)
	s := &benchSetup{g: g}
	var err error
	if s.sling, err = core.Build(g, &core.Options{Eps: benchEps, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	if s.lin, err = linearize.Build(g, &linearize.Options{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	// MC at the theory-derived walk count when it fits in 1 GiB,
	// mirroring the paper's 4-smallest-only MC coverage.
	t := mc.DeriveTruncation(benchEps, 0.6)
	nw := mc.DeriveNumWalks(benchEps, 0.01, g.NumNodes())
	if int64(g.NumNodes())*int64(nw)*int64(t+1)*4 <= 1<<30 {
		if s.mc, err = mc.Build(g, &mc.Options{C: 0.6, NumWalks: nw, Truncation: t, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	s.pairs = workload.RandomPairs(g, 1024, 7)
	s.nodes = workload.RandomNodes(g, 256, 11)
	benchCache[dataset] = s
	return s
}

// BenchmarkTable3Datasets measures stand-in generation (Table 3).
func BenchmarkTable3Datasets(b *testing.B) {
	spec, _ := workload.ByName("GrQc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec.Generate(1)
	}
}

// ---- Figure 1: single-pair query time ----

func BenchmarkFig1SinglePairSLING(b *testing.B) {
	for _, ds := range []string{"GrQc", "Wiki-Vote", "Enron"} {
		b.Run(ds, func(b *testing.B) {
			s := setup(b, ds)
			qs := s.sling.NewScratch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := s.pairs[i%len(s.pairs)]
				s.sling.SimRank(p.U, p.V, qs)
			}
		})
	}
}

func BenchmarkFig1SinglePairLinearize(b *testing.B) {
	for _, ds := range []string{"GrQc", "Wiki-Vote"} {
		b.Run(ds, func(b *testing.B) {
			s := setup(b, ds)
			ls := s.lin.NewScratch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := s.pairs[i%len(s.pairs)]
				s.lin.SimRank(p.U, p.V, ls)
			}
		})
	}
}

func BenchmarkFig1SinglePairMC(b *testing.B) {
	s := setup(b, "GrQc")
	if s.mc == nil {
		b.Skip("MC index exceeds the memory cap")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := s.pairs[i%len(s.pairs)]
		s.mc.SimRank(p.U, p.V)
	}
}

// ---- Figure 2: single-source query time ----

func BenchmarkFig2SingleSourceSLING(b *testing.B) {
	for _, ds := range []string{"GrQc", "Wiki-Vote", "Enron"} {
		b.Run(ds, func(b *testing.B) {
			s := setup(b, ds)
			ss := s.sling.NewSourceScratch()
			out := make([]float64, s.g.NumNodes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.sling.SingleSource(s.nodes[i%len(s.nodes)], ss, out)
			}
		})
	}
}

func BenchmarkFig2SingleSourceSLINGAlg3Loop(b *testing.B) {
	s := setup(b, "GrQc")
	qs := s.sling.NewScratch()
	out := make([]float64, s.g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.sling.SingleSourceNaive(s.nodes[i%len(s.nodes)], qs, out)
	}
}

func BenchmarkFig2SingleSourceLinearize(b *testing.B) {
	for _, ds := range []string{"GrQc", "Wiki-Vote"} {
		b.Run(ds, func(b *testing.B) {
			s := setup(b, ds)
			ls := s.lin.NewScratch()
			out := make([]float64, s.g.NumNodes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.lin.SingleSource(s.nodes[i%len(s.nodes)], ls, out)
			}
		})
	}
}

func BenchmarkFig2SingleSourceMC(b *testing.B) {
	s := setup(b, "GrQc")
	if s.mc == nil {
		b.Skip("MC index exceeds the memory cap")
	}
	out := make([]float64, s.g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.mc.SingleSource(s.nodes[i%len(s.nodes)], out)
	}
}

// ---- Figure 3: preprocessing time ----

func BenchmarkFig3PreprocessSLING(b *testing.B) {
	s := setup(b, "GrQc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(s.g, &core.Options{Eps: benchEps, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3PreprocessLinearize(b *testing.B) {
	s := setup(b, "GrQc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linearize.Build(s.g, &linearize.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3PreprocessMC(b *testing.B) {
	s := setup(b, "GrQc")
	if s.mc == nil {
		b.Skip("MC index exceeds the memory cap")
	}
	nw, t := s.mc.NumWalks(), s.mc.Truncation()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Build(s.g, &mc.Options{NumWalks: nw, Truncation: t, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 4 is a size table, not a timing; report it as metrics. ----

func BenchmarkFig4SpaceReport(b *testing.B) {
	s := setup(b, "GrQc")
	b.ReportMetric(float64(s.sling.Bytes()+s.g.Bytes()), "sling-bytes")
	b.ReportMetric(float64(s.lin.Bytes()+s.g.Bytes()), "linearize-bytes")
	if s.mc != nil {
		b.ReportMetric(float64(s.mc.Bytes()+s.g.Bytes()), "mc-bytes")
	}
	for i := 0; i < b.N; i++ {
		_ = s.sling.Bytes()
	}
}

// ---- Figure 9: parallel construction ----

func BenchmarkFig9ParallelBuild(b *testing.B) {
	s := setup(b, "Enron")
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(s.g, &core.Options{Eps: benchEps, Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 10: out-of-core construction ----

func BenchmarkFig10OutOfCore(b *testing.B) {
	s := setup(b, "GrQc")
	for _, cfg := range []struct {
		name string
		mem  int64
	}{
		{"buffer-64KiB", extsort.MinMemBudget},
		{"buffer-4MiB", 4 << 20},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dir := b.TempDir()
				if _, err := core.BuildOutOfCore(s.g, &core.Options{Eps: benchEps, Seed: 1},
					core.OutOfCoreOptions{Dir: dir, MemBudget: cfg.mem}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablations (Section 5 design choices) ----

func BenchmarkAblationDEstimatorBasic(b *testing.B) {
	s := setup(b, "GrQc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(s.g, &core.Options{Eps: benchEps, Seed: 1, BasicEstimator: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDEstimatorAdaptive(b *testing.B) {
	s := setup(b, "GrQc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(s.g, &core.Options{Eps: benchEps, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSpaceReduction(b *testing.B) {
	s := setup(b, "GrQc")
	full, err := core.Build(s.g, &core.Options{Eps: benchEps, Seed: 1, DisableSpaceReduction: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		b.ReportMetric(float64(full.Bytes()), "index-bytes")
		qs := full.NewScratch()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := s.pairs[i%len(s.pairs)]
			full.SimRank(p.U, p.V, qs)
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportMetric(float64(s.sling.Bytes()), "index-bytes")
		qs := s.sling.NewScratch()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := s.pairs[i%len(s.pairs)]
			s.sling.SimRank(p.U, p.V, qs)
		}
	})
}

func BenchmarkAblationEnhanceQuery(b *testing.B) {
	s := setup(b, "GrQc")
	enh, err := core.Build(s.g, &core.Options{Eps: benchEps, Seed: 1, Enhance: true})
	if err != nil {
		b.Fatal(err)
	}
	qs := enh.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := s.pairs[i%len(s.pairs)]
		enh.SimRank(p.U, p.V, qs)
	}
}

// ---- Public facade overhead ----

func BenchmarkFacadeSimRank(b *testing.B) {
	s := setup(b, "GrQc")
	ix, err := Build(s.g, WithEps(benchEps), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := s.pairs[i%len(s.pairs)]
		if _, err := ix.SimRank(ctx, p.U, p.V); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Serving engine: top-k selection and batch single-source ----

// benchSortTop is the pre-heap top-k baseline (materialize all positive
// candidates, full sort) kept for comparison.
func benchSortTop(scores []float64, k int, skip NodeID) []Scored {
	out := make([]Scored, 0, len(scores))
	for v, sc := range scores {
		if NodeID(v) == skip || sc <= 0 {
			continue
		}
		out = append(out, Scored{Node: NodeID(v), Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

// BenchmarkTopK compares size-k heap selection against the full-sort
// baseline it replaced, over one precomputed score vector so only the
// selection step is measured (k=10 ≪ n).
func BenchmarkTopK(b *testing.B) {
	s := setup(b, "Enron")
	ss := s.sling.NewSourceScratch()
	scores := s.sling.SingleSource(s.nodes[0], ss, nil)
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.SelectTop(scores, 10, s.nodes[0])
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSortTop(scores, 10, s.nodes[0])
		}
	})
}

// BenchmarkTopKEndToEnd is the facade path a /topk request takes:
// pooled single-source evaluation plus heap selection.
func BenchmarkTopKEndToEnd(b *testing.B) {
	s := setup(b, "GrQc")
	ix, err := Build(s.g, WithEps(benchEps), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.TopK(ctx, s.nodes[i%len(s.nodes)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleSourceBatch measures batch fan-out over worker counts —
// the engine behind POST /batch and SingleSourceBatch.
func BenchmarkSingleSourceBatch(b *testing.B) {
	s := setup(b, "GrQc")
	us := s.nodes[:64]
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4", 8: "workers-8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.sling.SingleSourceBatch(nil, us, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
