// Dedup: duplicate-account detection with a SimRank similarity join (the
// "similarity join" query of the paper's Section 8).
//
// A subtlety worth knowing before using SimRank for deduplication: the
// score of a pair with |I| shared in-neighbors includes a 1/|I| dilution,
// so two accounts sharing ONE follower score c = 0.6 while two accounts
// sharing thirty followers score only ~c/30. The top of any SimRank join
// is therefore dominated by low-support sibling pairs. A practical dedup
// pipeline combines the join with a support filter: SimilarPairs proposes
// structurally similar candidates, and the common-in-neighbor count
// separates engineered duplicates (several shared followers AND a high
// score) from incidental siblings (one shared follower).
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"sling/internal/rng"

	"sling"
)

const (
	organic = 4000
	pairs   = 12 // planted duplicate pairs, two fresh accounts each
)

// commonIn counts shared in-neighbors of u and v (both lists are sorted).
func commonIn(g *sling.Graph, u, v sling.NodeID) int {
	a, b := g.InNeighbors(u), g.InNeighbors(v)
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

func main() {
	rnd := rng.New(31)
	// Layout: [0, organic) organic accounts, then `pairs` duplicate pairs.
	n := organic + 2*pairs
	b := sling.NewGraphBuilder(n)

	// Organic follow graph: preferential attachment, ~7 follows each.
	endpoints := []sling.NodeID{0}
	for a := 1; a < organic; a++ {
		for f := 0; f < 7; f++ {
			var t sling.NodeID
			if rnd.Float64() < 0.7 {
				t = endpoints[rnd.Intn(len(endpoints))]
			} else {
				t = sling.NodeID(rnd.Intn(a))
			}
			if int(t) != a {
				b.AddEdge(sling.NodeID(a), t)
				endpoints = append(endpoints, t)
			}
		}
	}
	// Planted duplicates: each pair of fresh accounts is bootstrapped by
	// the same three organic followers (s ≈ c/3·(3 + noise)/3 ≈ 0.2+).
	for i := 0; i < pairs; i++ {
		u := sling.NodeID(organic + 2*i)
		v := u + 1
		for k := 0; k < 3; k++ {
			f := sling.NodeID(rnd.Intn(organic))
			b.AddEdge(f, u)
			b.AddEdge(f, v)
		}
	}
	g := b.Build()
	fmt.Printf("follow graph: %d accounts, %d follows, %d duplicate pairs planted\n",
		g.NumNodes(), g.NumEdges(), pairs)

	ix, err := sling.Build(g, sling.WithEps(0.05), sling.WithSeed(17))
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: similarity join proposes candidates.
	const tau = 0.15
	cands := ix.SimilarPairs(tau)
	// Phase 2: support filter keeps pairs with >= 2 shared followers.
	const minSupport = 2
	var flagged []sling.PairScore
	for _, p := range cands {
		if commonIn(g, p.U, p.V) >= minSupport {
			flagged = append(flagged, p)
		}
	}
	fmt.Printf("join at tau=%.2f: %d candidates; %d remain after the support>=%d filter\n\n",
		tau, len(cands), len(flagged), minSupport)

	isPlanted := func(u, v sling.NodeID) bool {
		return u >= organic && v == u+1 && (int(u)-organic)%2 == 0
	}
	found := 0
	for _, p := range flagged {
		mark := " "
		if isPlanted(p.U, p.V) {
			mark = "*"
			found++
		}
		fmt.Printf("  %s accounts %4d ~ %4d  s = %.3f  shared followers = %d\n",
			mark, p.U, p.V, p.Score, commonIn(g, p.U, p.V))
	}
	fmt.Printf("\nrecovered %d/%d planted duplicate pairs (* = planted)\n", found, pairs)
}
