// Recommend: item-to-item collaborative filtering on a bipartite
// user-item graph, one of SimRank's original applications (Jeh & Widom;
// Antonellis et al.'s SimRank++ built a query-rewriting product on it).
//
// Purchases are edges user -> item. Two items are SimRank-similar when
// they are bought by similar users, recursively. The generator plants
// five interest groups of users and one catalog section per group, plus
// a block of generic items everyone buys. Good recommendations for a
// section item come from the same section; the generic items must not
// dominate despite their popularity.
//
//	go run ./examples/recommend
package main

import (
	"context"
	"fmt"
	"log"
	"sling/internal/rng"

	"sling"
)

const (
	numUsers   = 2000
	numGroups  = 5
	perSection = 60 // items per catalog section
	generic    = 20 // items bought by everyone
	buysEach   = 12
)

func main() {
	rnd := rng.New(99)
	numItems := numGroups*perSection + generic
	// Node layout: [0, numUsers) users, [numUsers, numUsers+numItems) items.
	item := func(i int) sling.NodeID { return sling.NodeID(numUsers + i) }
	section := func(i int) int {
		if i >= numGroups*perSection {
			return -1 // generic
		}
		return i / perSection
	}

	b := sling.NewGraphBuilder(numUsers + numItems)
	for u := 0; u < numUsers; u++ {
		group := u % numGroups
		for p := 0; p < buysEach; p++ {
			var it int
			switch {
			case rnd.Float64() < 0.25:
				it = numGroups*perSection + rnd.Intn(generic) // generic item
			case rnd.Float64() < 0.9:
				it = group*perSection + rnd.Intn(perSection) // own section
			default:
				it = rnd.Intn(numGroups * perSection) // browsing noise
			}
			b.AddEdge(sling.NodeID(u), item(it))
		}
	}
	g := b.Build()
	fmt.Printf("purchase graph: %d users, %d items, %d purchases\n",
		numUsers, numItems, g.NumEdges())

	ix, err := sling.Build(g, sling.WithEps(0.05), sling.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SLING index built: %.1f KB, error bound %.3g\n\n",
		float64(ix.Bytes())/1024, ix.ErrorBound())

	// "Customers who bought this also liked": top similar items for one
	// item per section.
	correct, total := 0, 0
	ctx := context.Background()
	for sec := 0; sec < numGroups; sec++ {
		query := sec*perSection + 7
		scores, err := ix.SingleSource(ctx, item(query), nil)
		if err != nil {
			log.Fatal(err)
		}
		type rec struct {
			item  int
			score float64
		}
		var recs []rec
		for i := 0; i < numItems; i++ {
			if i == query {
				continue
			}
			if s := scores[item(i)]; s > 0 {
				recs = append(recs, rec{i, s})
			}
		}
		// Partial selection of the top 5.
		for k := 0; k < 5 && k < len(recs); k++ {
			best := k
			for j := k + 1; j < len(recs); j++ {
				if recs[j].score > recs[best].score {
					best = j
				}
			}
			recs[k], recs[best] = recs[best], recs[k]
		}
		if len(recs) > 5 {
			recs = recs[:5]
		}
		fmt.Printf("item %3d (section %d) -> ", query, sec)
		for _, r := range recs {
			tag := fmt.Sprintf("s%d", section(r.item))
			if section(r.item) == -1 {
				tag = "gen"
			}
			fmt.Printf("%d(%s %.3f) ", r.item, tag, r.score)
			if section(r.item) == sec {
				correct++
			}
			total++
		}
		fmt.Println()
	}
	fmt.Printf("\nsame-section precision of top-5 recommendations: %.0f%%\n",
		100*float64(correct)/float64(total))
}
