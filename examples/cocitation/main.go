// Cocitation: "find related papers" over a synthetic citation network —
// the workload that motivates single-source SimRank in the paper's
// introduction (web mining, collaborative filtering).
//
// The generator plants ten research "topics". Papers cite mostly within
// their topic (plus some cross-topic noise), so SimRank should rank
// same-topic papers as most similar. The example builds the index,
// queries a few papers, and reports how often the top-10 related papers
// share the query's topic.
//
//	go run ./examples/cocitation
package main

import (
	"context"
	"fmt"
	"log"
	"sling/internal/rng"

	"sling"
)

const (
	numPapers = 3000
	numTopics = 10
	citesEach = 8
)

func main() {
	rnd := rng.New(7)

	// Papers arrive in order and cite earlier papers: 85% of citations go
	// to the same topic, the rest anywhere. Paper i's topic is i%numTopics.
	topic := func(p int) int { return p % numTopics }
	b := sling.NewGraphBuilder(numPapers)
	for p := numTopics * 2; p < numPapers; p++ {
		for c := 0; c < citesEach; c++ {
			var cited int
			if rnd.Float64() < 0.85 {
				// Earlier paper with the same topic.
				k := rnd.Intn(p / numTopics) // index within the topic
				cited = k*numTopics + topic(p)
			} else {
				cited = rnd.Intn(p)
			}
			if cited != p {
				b.AddEdge(sling.NodeID(p), sling.NodeID(cited))
			}
		}
	}
	g := b.Build()
	fmt.Printf("citation network: %d papers, %d citations\n", g.NumNodes(), g.NumEdges())

	ix, err := sling.Build(g, sling.WithEps(0.05), sling.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SLING index: %d entries, %.1f KB, error bound %.3g\n\n",
		ix.Stats().Entries, float64(ix.Bytes())/1024, ix.ErrorBound())

	// Related-paper search for a few query papers.
	ctx := context.Background()
	queries := []sling.NodeID{150, 707, 1207}
	totalHits, totalRecs := 0, 0
	for _, q := range queries {
		top, err := ix.TopK(ctx, q, 10)
		if err != nil {
			log.Fatal(err)
		}
		hits := 0
		for _, rec := range top {
			if topic(int(rec.Node)) == topic(int(q)) {
				hits++
			}
		}
		totalHits += hits
		totalRecs += len(top)
		fmt.Printf("paper %4d (topic %d): top related papers ", q, topic(int(q)))
		for i, rec := range top {
			if i == 5 {
				break
			}
			fmt.Printf("%d(t%d, %.3f) ", rec.Node, topic(int(rec.Node)), rec.Score)
		}
		fmt.Printf("-> %d/%d same topic\n", hits, len(top))
	}
	fmt.Printf("\ntopic purity of recommendations: %.0f%% (random would give ~%.0f%%)\n",
		100*float64(totalHits)/float64(totalRecs), 100.0/numTopics)
}
