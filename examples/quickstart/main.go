// Quickstart: build a SLING index over a toy graph and run the three
// query types (single pair, single source, top-k) through the Querier
// surface every backend shares.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"sling"
)

func main() {
	// A small citation-style graph: papers 0 and 1 are both cited by 2
	// and 3, making them structurally similar; paper 5 hangs off 4.
	//
	//	2 -> 0    3 -> 0
	//	2 -> 1    3 -> 1
	//	4 -> 2    4 -> 3
	//	4 -> 5
	b := sling.NewGraphBuilder(6)
	for _, e := range [][2]sling.NodeID{
		{2, 0}, {3, 0},
		{2, 1}, {3, 1},
		{4, 2}, {4, 3},
		{4, 5},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()

	// Unset options take the paper's defaults: c = 0.6, ε = 0.025.
	ix, err := sling.Build(g, sling.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	fmt.Printf("index: %d hitting-probability entries, %d bytes, error bound %.4g\n\n",
		ix.Stats().Entries, ix.Bytes(), ix.ErrorBound())

	ctx := context.Background()
	pair := func(u, v sling.NodeID) float64 {
		s, err := ix.SimRank(ctx, u, v)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	// Single pair: nodes 0 and 1 share both in-neighbors, so they are
	// highly similar (exact SimRank here is c·(1+c)/2 = 0.48).
	fmt.Printf("s(0, 1) = %.4f   (same citers -> similar)\n", pair(0, 1))
	fmt.Printf("s(0, 5) = %.4f   (unrelated)\n", pair(0, 5))
	fmt.Printf("s(2, 3) = %.4f   (both cited by 4)\n\n", pair(2, 3))

	// Single source: all similarities from node 0 at once.
	scores, err := ix.SingleSource(ctx, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("single-source from node 0:")
	for v, s := range scores {
		fmt.Printf("  s(0, %d) = %.4f\n", v, s)
	}
	fmt.Println()

	// Top-k: the most similar nodes to 0.
	top, err := ix.TopK(ctx, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-2 nodes most similar to 0:")
	for _, sc := range top {
		fmt.Printf("  node %d  score %.4f\n", sc.Node, sc.Score)
	}
}
