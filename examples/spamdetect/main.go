// Spamdetect: neighborhood-similarity audit of a web-style graph, in the
// spirit of the spam-detection application the paper cites (Spirin &
// Han's survey). It also demonstrates the big-graph workflow: out-of-core
// index construction (Section 5.4 of the paper), saving the index, and
// querying it straight from disk with constant memory.
//
// A link farm is a clique-ish cluster of pages that link to each other to
// inflate a target page. Farm pages end up with nearly identical
// in-neighborhoods, so their mutual SimRank sits on a plateau far above
// the organic background; ranking pages by the mean similarity to their
// own in-neighbors ("cohesion") exposes the whole farm.
//
//	go run ./examples/spamdetect
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sling/internal/rng"
	"sort"

	"sling"
)

const (
	organicPages = 8000
	farmPages    = 40
	farmStart    = organicPages // farm occupies the last IDs
)

func main() {
	rnd := rng.New(2016)
	n := organicPages + farmPages
	b := sling.NewGraphBuilder(n)

	// Organic web: preferential attachment, 6 links per page.
	endpoints := []sling.NodeID{0}
	for p := 1; p < organicPages; p++ {
		for l := 0; l < 6; l++ {
			var t sling.NodeID
			if rnd.Float64() < 0.7 {
				t = endpoints[rnd.Intn(len(endpoints))]
			} else {
				t = sling.NodeID(rnd.Intn(p))
			}
			if int(t) != p {
				b.AddEdge(sling.NodeID(p), t)
				endpoints = append(endpoints, t)
			}
		}
	}
	// The farm: every farm page links to every other (and a few organic
	// pages for camouflage).
	for i := 0; i < farmPages; i++ {
		for j := 0; j < farmPages; j++ {
			if i != j {
				b.AddEdge(sling.NodeID(farmStart+i), sling.NodeID(farmStart+j))
			}
		}
		for c := 0; c < 3; c++ {
			b.AddEdge(sling.NodeID(farmStart+i), sling.NodeID(rnd.Intn(organicPages)))
		}
	}
	g := b.Build()
	fmt.Printf("web graph: %d pages, %d links (%d-page farm planted)\n",
		g.NumNodes(), g.NumEdges(), farmPages)

	// Out-of-core build: hitting-probability entries spill to disk and
	// only O(n) state stays resident — the Section 5.4 workflow for
	// graphs whose index exceeds memory.
	workDir, err := os.MkdirTemp("", "spamdetect")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)
	ix, err := sling.BuildOutOfCore(g, filepath.Join(workDir, "spill"), 4<<20,
		sling.WithEps(0.1), sling.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	indexPath := filepath.Join(workDir, "web.sling")
	if err := ix.Save(indexPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built out-of-core (4 MiB buffer) and saved: %.1f KB\n\n", float64(ix.Bytes())/1024)

	// Audit metric: in-neighborhood cohesion. A page's cohesion is its
	// mean SimRank to the pages that link to it. Organic pages are linked
	// by heterogeneous pages (cohesion near 0); a farm page is linked by
	// its fellow farm pages, which share its whole in-neighborhood, so
	// cohesion sits at the farm's mutual-similarity plateau.
	ctx := context.Background()
	cohesion := func(p sling.NodeID) float64 {
		ins := g.InNeighbors(p)
		if len(ins) == 0 {
			return 0
		}
		scores, err := ix.SingleSource(ctx, p, nil)
		if err != nil {
			log.Fatal(err)
		}
		sum := 0.0
		for _, u := range ins {
			sum += scores[u]
		}
		return sum / float64(len(ins))
	}
	// Score a sample of organic pages plus every farm page, then rank.
	type audit struct {
		page sling.NodeID
		coh  float64
	}
	var audits []audit
	for i := 0; i < 200; i++ {
		p := sling.NodeID(rnd.Intn(organicPages))
		audits = append(audits, audit{p, cohesion(p)})
	}
	for i := 0; i < farmPages; i++ {
		audits = append(audits, audit{sling.NodeID(farmStart + i), cohesion(sling.NodeID(farmStart + i))})
	}
	sort.Slice(audits, func(i, j int) bool { return audits[i].coh > audits[j].coh })
	farmInTop := 0
	for _, a := range audits[:farmPages] {
		if int(a.page) >= farmStart {
			farmInTop++
		}
	}
	fmt.Printf("cohesion audit over %d pages: %d/%d of the top-%d cohesion scores are farm pages\n",
		len(audits), farmInTop, farmPages, farmPages)
	fmt.Printf("  highest cohesion: page %d at %.4f\n\n", audits[0].page, audits[0].coh)

	// Disk-resident spot checks: constant-memory queries against the file.
	di, err := sling.OpenDisk(indexPath, g)
	if err != nil {
		log.Fatal(err)
	}
	defer di.Close()
	farmPair, err := di.SimRank(ctx, sling.NodeID(farmStart+1), sling.NodeID(farmStart+2))
	if err != nil {
		log.Fatal(err)
	}
	organicPair, err := di.SimRank(ctx, 100, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk-resident queries (%.1f KB resident):\n", float64(di.Bytes())/1024)
	fmt.Printf("  farm pair     s = %.3f\n", farmPair)
	fmt.Printf("  organic pair  s = %.3f\n", organicPair)
	if farmPair > 0.01 && farmPair > 10*(organicPair+1e-9) {
		fmt.Println("verdict: farm pages flagged (mutual similarity far above background)")
	} else {
		fmt.Println("verdict: no separation found (unexpected)")
	}
}
